//! Sequence pattern discovery (§2.3.4, §4.2): find all active motifs.
//!
//! Given a set `S` of sequences and user parameters `(Mut, Occur, Length,
//! MaxLength)`, find all motifs `P` with `occurrence_no^Mut_S(P) ≥ Occur`
//! and `Length ≤ |P| ≤ MaxLength`.
//!
//! The algorithm follows Wang et al. as described in the dissertation:
//!
//! 1. **Phase 1**: build a generalised suffix tree over a sample `A ⊆ S`
//!    and harvest candidate segments (all distinct substrings meeting the
//!    length rule). Candidates not occurring exactly in the sample are
//!    never generated — the standard sampling heuristic; with
//!    `sample = S` and `Mut = 0` the procedure is exact.
//! 2. **Phase 2**: evaluate candidates against all of `S`, with the
//!    subpattern pruning `occurrence(P) ≥ occurrence(P′)` for `P ⊑ P′`.
//!
//! Phase 2 is exactly an E-dag/E-tree traversal: [`SeqMiningProblem`]
//! implements [`MiningProblem`] with patterns = motifs, children = GST
//! extensions, goodness = occurrence number. Any of the framework's
//! traversals — sequential, PLED, PLET optimistic/load-balanced — solves
//! it; this is the application of Chapter 4.

use crate::gst::Gst;
use crate::matcher::occurrence_number;
use crate::seq::{Motif, Sequence};
use fpdm_core::{
    parallel_ett, parallel_wave, sequential_ett, MiningOutcome, MiningProblem, ParallelConfig,
    PatternCodec,
};
use std::sync::Arc;

/// User parameters of a discovery run (Table 4.2's columns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoveryParams {
    /// Minimum motif length `Length` (non-VLDC letters).
    pub min_length: usize,
    /// Maximum motif length (bounds the traversal; the dissertation's runs
    /// are bounded by the sequences themselves).
    pub max_length: usize,
    /// Minimum occurrence number `Occur`.
    pub min_occurrence: usize,
    /// Allowed mutations `Mut` per sequence match.
    pub max_mutations: usize,
    /// Candidate-generation threshold (phase 1 of Wang et al., §2.3.4):
    /// only extensions whose *exact* occurrence in the sample reaches
    /// this value become candidates. `1` generates every sample
    /// substring; with `Mut = 0`, any value up to `min_occurrence` is
    /// lossless (exact occurrence *is* the goodness); with mutations it
    /// is the sampling heuristic of the original algorithm.
    pub min_sample_occurrence: usize,
}

impl DiscoveryParams {
    /// Parameters with the default candidate threshold of 1.
    pub fn new(
        min_length: usize,
        max_length: usize,
        min_occurrence: usize,
        max_mutations: usize,
    ) -> Self {
        DiscoveryParams {
            min_length,
            max_length,
            min_occurrence,
            max_mutations,
            min_sample_occurrence: 1,
        }
    }

    /// Set the candidate-generation threshold.
    pub fn with_sample_occurrence(mut self, q: usize) -> Self {
        self.min_sample_occurrence = q.max(1);
        self
    }
}

/// A discovered active motif with its occurrence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveMotif {
    /// The motif.
    pub motif: Motif,
    /// Its occurrence number within the allowed mutations.
    pub occurrence: usize,
}

/// Phase 2 of sequence pattern discovery as a pattern-lattice mining
/// problem over single-segment motifs `*X*`.
///
/// * Pattern: the segment `X` (bytes); the zero-length pattern is `**`.
/// * Children: right-extensions `X·c` that occur *exactly* in the sample
///   (GST-guided generation).
/// * Immediate subpatterns: the `(k-1)`-prefix and `(k-1)`-suffix
///   (Example 3.1.1).
/// * Goodness: the occurrence number over the full set, within the
///   mutation budget (the expensive DP of [`crate::matcher`]).
/// * Good: `occurrence ≥ Occur` — motifs shorter than `Length` are "good
///   subpatterns" kept for extension and filtered from the report.
pub struct SeqMiningProblem {
    sequences: Vec<Sequence>,
    gst: Gst,
    params: DiscoveryParams,
}

impl SeqMiningProblem {
    /// Build the problem: GST over `sample` (candidate generation),
    /// occurrence counting over all of `sequences`.
    pub fn with_sample(
        sequences: Vec<Sequence>,
        sample: &[Sequence],
        params: DiscoveryParams,
    ) -> Self {
        SeqMiningProblem {
            gst: Gst::build(sample),
            sequences,
            params,
        }
    }

    /// Build with `sample = S` (exact for `Mut = 0`).
    pub fn new(sequences: Vec<Sequence>, params: DiscoveryParams) -> Self {
        let gst = Gst::build(&sequences);
        SeqMiningProblem {
            gst,
            sequences,
            params,
        }
    }

    /// The sequence database.
    pub fn sequences(&self) -> &[Sequence] {
        &self.sequences
    }

    /// The discovery parameters.
    pub fn params(&self) -> &DiscoveryParams {
        &self.params
    }

    /// Turn a mining outcome into the final report, applying the
    /// minimum-length filter.
    pub fn report(&self, outcome: &MiningOutcome<Vec<u8>>) -> Vec<ActiveMotif> {
        let mut out: Vec<ActiveMotif> = outcome
            .good
            .iter()
            .filter(|(seg, _)| seg.len() >= self.params.min_length)
            .map(|(seg, occ)| ActiveMotif {
                motif: Motif::single(seg),
                occurrence: *occ as usize,
            })
            .collect();
        out.sort_by(|a, b| a.motif.cmp(&b.motif));
        out
    }
}

impl MiningProblem for SeqMiningProblem {
    type Pattern = Vec<u8>;

    fn root(&self) -> Vec<u8> {
        Vec::new()
    }

    fn pattern_len(&self, p: &Vec<u8>) -> usize {
        p.len()
    }

    fn children(&self, p: &Vec<u8>) -> Vec<Vec<u8>> {
        if p.len() >= self.params.max_length {
            return Vec::new();
        }
        self.gst
            .extensions(p)
            .into_iter()
            .filter_map(|c| {
                let mut q = p.clone();
                q.push(c);
                if self.params.min_sample_occurrence > 1
                    && self.gst.occurrence(&q) < self.params.min_sample_occurrence
                {
                    None
                } else {
                    Some(q)
                }
            })
            .collect()
    }

    fn immediate_subpatterns(&self, p: &Vec<u8>) -> Vec<Vec<u8>> {
        let prefix = p[..p.len() - 1].to_vec();
        let suffix = p[1..].to_vec();
        if prefix == suffix {
            vec![prefix]
        } else {
            vec![prefix, suffix]
        }
    }

    fn goodness(&self, p: &Vec<u8>) -> f64 {
        // A motif no longer than the mutation budget matches every
        // sequence (delete all of it), so skip the DP.
        if p.len() <= self.params.max_mutations {
            return self.sequences.len() as f64;
        }
        occurrence_number(
            &Motif::single(p),
            &self.sequences,
            self.params.max_mutations,
        ) as f64
    }

    fn is_good(&self, _p: &Vec<u8>, goodness: f64) -> bool {
        goodness >= self.params.min_occurrence as f64
    }
}

impl PatternCodec for SeqMiningProblem {
    fn encode_pattern(&self, p: &Vec<u8>) -> Vec<u8> {
        p.clone()
    }
    fn decode_pattern(&self, bytes: &[u8]) -> Vec<u8> {
        bytes.to_vec()
    }
}

/// Sequential discovery of all active `*X*` motifs.
pub fn discover(sequences: Vec<Sequence>, params: DiscoveryParams) -> Vec<ActiveMotif> {
    let problem = SeqMiningProblem::new(sequences, params);
    let outcome = sequential_ett(&problem);
    problem.report(&outcome)
}

/// Parallel discovery on the PLinda runtime (Chapter 4's programs).
pub fn discover_parallel(
    sequences: Vec<Sequence>,
    params: DiscoveryParams,
    config: &ParallelConfig,
) -> Vec<ActiveMotif> {
    let problem = Arc::new(SeqMiningProblem::new(sequences, params));
    let outcome = parallel_ett(Arc::clone(&problem), config);
    problem.report(&outcome)
}

/// Parallel discovery as the `"seqmine"` farm program: candidate-
/// partitioned task waves over the GST extension lattice
/// ([`fpdm_core::parallel_wave`]). Bit-identical to [`discover`] —
/// workers grade candidate segments against the full database while the
/// master owns the frontier — and runs unchanged over an in-process space
/// or a socket broker (`config.space`).
pub fn discover_farm(
    sequences: Vec<Sequence>,
    params: DiscoveryParams,
    config: &ParallelConfig,
) -> Vec<ActiveMotif> {
    let problem = Arc::new(SeqMiningProblem::new(sequences, params));
    let outcome = parallel_wave("seqmine", Arc::clone(&problem), config);
    problem.report(&outcome)
}

/// Combine single-segment candidates into two-segment motifs `*X1*X2*`
/// and evaluate them — the multi-VLDC pattern form of §2.3.4. Each
/// combination pairs active segments whose lengths satisfy the "at least
/// one ≥ half the specified length" rule; results meet the full length
/// and occurrence requirements.
pub fn discover_two_segment(
    sequences: &[Sequence],
    singles: &[ActiveMotif],
    params: &DiscoveryParams,
) -> Vec<ActiveMotif> {
    let mut out = Vec::new();
    let half = params.min_length.div_ceil(2);
    for a in singles {
        for b in singles {
            let (sa, sb) = (&a.motif.segments()[0], &b.motif.segments()[0]);
            if sa.len() + sb.len() < params.min_length || sa.len() + sb.len() > params.max_length {
                continue;
            }
            if sa.len() < half && sb.len() < half {
                continue;
            }
            let m = Motif::new(vec![sa.clone(), sb.clone()]);
            let occ = occurrence_number(&m, sequences, params.max_mutations);
            if occ >= params.min_occurrence {
                out.push(ActiveMotif {
                    motif: m,
                    occurrence: occ,
                });
            }
        }
    }
    out.sort_by(|a, b| a.motif.cmp(&b.motif));
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpdm_core::sequential_edt;

    fn seqs(v: &[&str]) -> Vec<Sequence> {
        v.iter().map(|s| Sequence::from_str(s)).collect()
    }

    fn params(min_len: usize, occ: usize, mutations: usize) -> DiscoveryParams {
        DiscoveryParams::new(min_len, 10, occ, mutations)
    }

    #[test]
    fn toy_database_of_section_2_3_1() {
        // D = {FFRR, MRRM, MTRM, DPKY, AVLG}, occur >= 2, |P| >= 2:
        // good patterns are *RR* and *RM*.
        let found = discover(
            seqs(&["FFRR", "MRRM", "MTRM", "DPKY", "AVLG"]),
            params(2, 2, 0),
        );
        let names: Vec<String> = found.iter().map(|m| m.motif.to_string()).collect();
        assert_eq!(names, vec!["*RM*", "*RR*"]);
        assert!(found.iter().all(|m| m.occurrence == 2));
    }

    #[test]
    fn exact_discovery_matches_brute_force() {
        let db = seqs(&["ABCAB", "BCABC", "CABCA", "XXYYX"]);
        let p = params(2, 2, 0);
        let found = discover(db.clone(), p.clone());
        // Brute force over all substrings.
        let mut brute = std::collections::BTreeSet::new();
        for s in &db {
            for i in 0..s.len() {
                for j in (i + p.min_length)..=s.len() {
                    let seg = &s.bytes()[i..j];
                    let occ = db.iter().filter(|t| t.contains(seg)).count();
                    if occ >= p.min_occurrence {
                        brute.insert((seg.to_vec(), occ));
                    }
                }
            }
        }
        let got: std::collections::BTreeSet<(Vec<u8>, usize)> = found
            .iter()
            .map(|m| (m.motif.segments()[0].clone(), m.occurrence))
            .collect();
        assert_eq!(got, brute);
    }

    #[test]
    fn mutations_widen_the_result() {
        let db = seqs(&["ABCDE", "ABXDE", "QQQQQ"]);
        let strict = discover(db.clone(), params(5, 2, 0));
        assert!(strict.is_empty());
        let lax = discover(db, params(5, 2, 1));
        // ABCDE occurs within 1 mutation in both of the first sequences.
        assert!(lax
            .iter()
            .any(|m| m.motif.segments()[0] == b"ABCDE".to_vec()));
    }

    #[test]
    fn edt_and_ett_agree_on_discovery() {
        let db = seqs(&["GATTACA", "GATTTACA", "CATTACA", "TTACAGA"]);
        let problem = SeqMiningProblem::new(db, params(3, 2, 0));
        let a = sequential_edt(&problem);
        let b = sequential_ett(&problem);
        assert_eq!(a.good, b.good);
        assert!(a.tested <= b.tested);
    }

    #[test]
    fn parallel_discovery_agrees_with_sequential() {
        let db = seqs(&["GATTACA", "GATTTACA", "CATTACA", "TTACAGA", "ATTACAT"]);
        let p = params(3, 2, 1);
        let sequential = discover(db.clone(), p.clone());
        for cfg in [
            ParallelConfig::load_balanced(3),
            ParallelConfig::optimistic(3),
            ParallelConfig::load_balanced(7).adaptive(),
        ] {
            let parallel = discover_parallel(db.clone(), p.clone(), &cfg);
            assert_eq!(sequential, parallel);
        }
    }

    #[test]
    fn farm_discovery_matches_golden_fixture() {
        // The §2.3.1 doc-test database, mined on the farm: the report is
        // pinned bit-for-bit, not merely compared against the sequential
        // run.
        let found = discover_farm(
            seqs(&["FFRR", "MRRM", "MTRM", "DPKY", "AVLG"]),
            params(2, 2, 0),
            &ParallelConfig::load_balanced(3),
        );
        let names: Vec<String> = found.iter().map(|m| m.motif.to_string()).collect();
        assert_eq!(names, vec!["*RM*", "*RR*"]);
        assert!(found.iter().all(|m| m.occurrence == 2));
    }

    #[test]
    fn farm_discovery_is_bit_identical_to_sequential() {
        let db = seqs(&["GATTACA", "GATTTACA", "CATTACA", "TTACAGA", "ATTACAT"]);
        let p = params(3, 2, 1);
        let sequential = discover(db.clone(), p.clone());
        for cfg in [
            ParallelConfig::load_balanced(1),
            ParallelConfig::load_balanced(4),
            ParallelConfig::load_balanced(3).with_prefetch(4),
            ParallelConfig::load_balanced(2)
                .kill_after(std::time::Duration::from_millis(1), 0)
                .kill_after(std::time::Duration::from_millis(2), 1),
        ] {
            let farm = discover_farm(db.clone(), p.clone(), &cfg);
            assert_eq!(sequential, farm);
        }
    }

    #[test]
    fn two_segment_combination() {
        let db = seqs(&["AABXXCDD", "AABYYCDD", "AABZZCDD", "OTHER"]);
        let p = params(4, 3, 0);
        let singles = discover(db.clone(), params(2, 3, 0));
        let twos = discover_two_segment(&db, &singles, &p);
        assert!(
            twos.iter().any(|m| m.motif.to_string() == "*AAB*CDD*"),
            "got {:?}",
            twos.iter().map(|m| m.motif.to_string()).collect::<Vec<_>>()
        );
        for m in &twos {
            assert!(m.occurrence >= 3);
            assert!(m.motif.len() >= 4);
        }
    }

    #[test]
    fn min_length_filter_applies_to_report_not_traversal() {
        let db = seqs(&["ABAB", "ABBA", "BABA"]);
        let problem = SeqMiningProblem::new(db, params(2, 2, 0));
        let outcome = sequential_ett(&problem);
        // Length-1 patterns are good subpatterns (extended) but filtered.
        assert!(outcome.good.keys().any(|k| k.len() == 1));
        let report = problem.report(&outcome);
        assert!(report.iter().all(|m| m.motif.len() >= 2));
    }
}

/// Generalise [`discover_two_segment`] to `k`-segment motifs
/// `*X1*X2*…*Xk*` (§2.3.4's general pattern form): assemble active
/// single segments left to right, pruning any prefix combination whose
/// occurrence already misses the bar (adding a segment never increases
/// occurrence), and report combinations meeting the full length rule —
/// at least one segment of length ≥ `min_length / k`, total length within
/// bounds.
pub fn discover_k_segment(
    sequences: &[Sequence],
    singles: &[ActiveMotif],
    params: &DiscoveryParams,
    k: usize,
) -> Vec<ActiveMotif> {
    assert!(k >= 1, "need at least one segment");
    let segments: Vec<&Vec<u8>> = singles.iter().map(|m| &m.motif.segments()[0]).collect();
    let kth = params.min_length.div_ceil(k);

    // Partial assemblies that still clear the occurrence bar.
    let mut partial: Vec<Vec<Vec<u8>>> = vec![Vec::new()];
    for stage in 0..k {
        let mut next = Vec::new();
        for combo in &partial {
            let used: usize = combo.iter().map(Vec::len).sum();
            for seg in &segments {
                let total = used + seg.len();
                if total > params.max_length {
                    continue;
                }
                // Remaining stages must still be able to reach min_length
                // with max-length segments.
                let longest = segments.iter().map(|s| s.len()).max().unwrap_or(0);
                if total + (k - stage - 1) * longest < params.min_length {
                    continue;
                }
                let mut c = combo.clone();
                c.push((*seg).clone());
                let occ =
                    occurrence_number(&Motif::new(c.clone()), sequences, params.max_mutations);
                if occ >= params.min_occurrence {
                    next.push(c);
                }
            }
        }
        partial = next;
    }

    let mut out: Vec<ActiveMotif> = partial
        .into_iter()
        .filter(|c| {
            let total: usize = c.iter().map(Vec::len).sum();
            total >= params.min_length && c.iter().any(|s| s.len() >= kth)
        })
        .map(|c| {
            let motif = Motif::new(c);
            let occurrence = occurrence_number(&motif, sequences, params.max_mutations);
            ActiveMotif { motif, occurrence }
        })
        .collect();
    out.sort_by(|a, b| a.motif.cmp(&b.motif));
    out.dedup();
    out
}

#[cfg(test)]
mod k_segment_tests {
    use super::*;

    fn seqs(v: &[&str]) -> Vec<Sequence> {
        v.iter().map(|s| Sequence::from_str(s)).collect()
    }

    #[test]
    fn three_segments_recovered() {
        let db = seqs(&["AAXXBBYYCC", "AAZZBBWWCC", "AAQQBBRRCC", "NOPENOPENO"]);
        let singles = discover(db.clone(), DiscoveryParams::new(2, 2, 3, 0));
        let p = DiscoveryParams::new(6, 8, 3, 0);
        let found = discover_k_segment(&db, &singles, &p, 3);
        assert!(
            found.iter().any(|m| m.motif.to_string() == "*AA*BB*CC*"),
            "{:?}",
            found
                .iter()
                .map(|m| m.motif.to_string())
                .collect::<Vec<_>>()
        );
        for m in &found {
            assert!(m.occurrence >= 3);
            assert_eq!(m.motif.segments().len(), 3);
            assert!(m.motif.len() >= 6);
        }
    }

    #[test]
    fn k1_matches_singles_at_threshold() {
        let db = seqs(&["ABAB", "ABBA", "BABA"]);
        let singles = discover(db.clone(), DiscoveryParams::new(2, 4, 2, 0));
        let p = DiscoveryParams::new(2, 4, 2, 0);
        let found = discover_k_segment(&db, &singles, &p, 1);
        // Every single-segment result reappears (as a 1-segment motif).
        for s in &singles {
            assert!(
                found.iter().any(|m| m.motif == s.motif),
                "missing {}",
                s.motif
            );
        }
    }

    #[test]
    fn length_rule_enforced() {
        let db = seqs(&["AABB", "AABB", "AABB"]);
        let singles = discover(db.clone(), DiscoveryParams::new(1, 2, 3, 0));
        let p = DiscoveryParams::new(4, 4, 3, 0);
        let found = discover_k_segment(&db, &singles, &p, 2);
        for m in &found {
            assert!(m.motif.len() >= 4);
            // At least one segment >= ceil(4/2) = 2.
            assert!(m.motif.segments().iter().any(|s| s.len() >= 2));
        }
    }
}
