//! Protein sequences and VLDC motifs (§2.3.3, §4.1.1).
//!
//! Biologists represent proteins as sequences over the 20-letter amino
//! acid alphabet. The motifs we discover are regular expressions of the
//! form `*S1*S2*…` where each segment `S_i` is a run of consecutive
//! letters and `*` is a variable-length don't care (VLDC) that may
//! substitute for zero or more letters.

use std::fmt;

/// The 20 amino-acid one-letter codes.
pub const AMINO_ACIDS: &[u8; 20] = b"ACDEFGHIKLMNPQRSTVWY";

/// A protein (or other) sequence: bytes over some alphabet.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Sequence(pub Vec<u8>);

impl Sequence {
    /// Build from raw bytes.
    pub fn new(bytes: Vec<u8>) -> Self {
        Sequence(bytes)
    }

    /// Build from a string slice (infallible, unlike `str::FromStr`).
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Self {
        Sequence(s.as_bytes().to_vec())
    }

    /// Sequence length.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is the sequence empty?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrow the bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.0
    }

    /// Does this sequence contain `segment` as an exact substring?
    pub fn contains(&self, segment: &[u8]) -> bool {
        if segment.is_empty() {
            return true;
        }
        self.0.windows(segment.len()).any(|w| w == segment)
    }
}

impl fmt::Display for Sequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.0 {
            write!(f, "{}", b as char)?;
        }
        Ok(())
    }
}

/// A VLDC motif `*S1*S2*…*Sm*`: non-empty segments separated (and
/// surrounded) by variable-length don't cares.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Motif {
    /// The segments, in order. Invariant: non-empty, each segment
    /// non-empty.
    segments: Vec<Vec<u8>>,
}

impl Motif {
    /// Single-segment motif `*X*`.
    pub fn single(segment: &[u8]) -> Self {
        assert!(!segment.is_empty(), "motif segments must be non-empty");
        Motif {
            segments: vec![segment.to_vec()],
        }
    }

    /// Multi-segment motif `*S1*S2*…*`.
    pub fn new(segments: Vec<Vec<u8>>) -> Self {
        assert!(!segments.is_empty(), "a motif needs at least one segment");
        assert!(
            segments.iter().all(|s| !s.is_empty()),
            "motif segments must be non-empty"
        );
        Motif { segments }
    }

    /// The segments.
    pub fn segments(&self) -> &[Vec<u8>] {
        &self.segments
    }

    /// `|P|`: the number of non-VLDC letters (the paper's motif length).
    pub fn len(&self) -> usize {
        self.segments.iter().map(Vec::len).sum()
    }

    /// Motifs are never empty (segments are non-empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Is `self` a subpattern of `other` (Wang et al.'s pruning relation)?
    /// `*U1*…*Um*` is a subpattern of `*V1*…*Vm*` if each `U_i` is a
    /// (contiguous) subsegment of `V_i`.
    pub fn is_subpattern_of(&self, other: &Motif) -> bool {
        self.segments.len() == other.segments.len()
            && self
                .segments
                .iter()
                .zip(&other.segments)
                .all(|(u, v)| v.windows(u.len()).any(|w| w == &u[..]) || u.is_empty())
    }
}

impl fmt::Display for Motif {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "*")?;
        for seg in &self.segments {
            for &b in seg {
                write!(f, "{}", b as char)?;
            }
            write!(f, "*")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_contains() {
        let s = Sequence::from_str("FFRR");
        assert!(s.contains(b"FR"));
        assert!(s.contains(b"FFRR"));
        assert!(!s.contains(b"RF"));
        assert!(s.contains(b""));
    }

    #[test]
    fn motif_len_counts_letters_only() {
        let m = Motif::new(vec![b"AB".to_vec(), b"CDE".to_vec()]);
        assert_eq!(m.len(), 5);
        assert_eq!(format!("{m}"), "*AB*CDE*");
    }

    #[test]
    fn subpattern_relation() {
        let small = Motif::new(vec![b"B".to_vec(), b"DE".to_vec()]);
        let big = Motif::new(vec![b"AB".to_vec(), b"CDE".to_vec()]);
        assert!(small.is_subpattern_of(&big));
        assert!(!big.is_subpattern_of(&small));
        // Different segment counts are incomparable.
        let one = Motif::single(b"AB");
        assert!(!one.is_subpattern_of(&big));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_segment_rejected() {
        Motif::new(vec![vec![]]);
    }
}

/// Parse FASTA-formatted text into `(header, sequence)` records — the
/// interface for users who *do* have a `cyclins.pirx`-style protein file.
/// Headers are the text after `>`; sequence lines are concatenated with
/// whitespace stripped. Lines before the first header are ignored.
pub fn parse_fasta(text: &str) -> Vec<(String, Sequence)> {
    let mut out: Vec<(String, Vec<u8>)> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            out.push((header.trim().to_owned(), Vec::new()));
        } else if let Some((_, seq)) = out.last_mut() {
            seq.extend(line.bytes().filter(|b| !b.is_ascii_whitespace()));
        }
    }
    out.into_iter()
        .map(|(h, s)| (h, Sequence::new(s)))
        .collect()
}

/// Render records as FASTA with 60-column sequence lines.
pub fn to_fasta(records: &[(String, Sequence)]) -> String {
    let mut out = String::new();
    for (header, seq) in records {
        out.push('>');
        out.push_str(header);
        out.push('\n');
        for chunk in seq.bytes().chunks(60) {
            for &b in chunk {
                out.push(b as char);
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod fasta_tests {
    use super::*;

    const SAMPLE: &str = ">CG2A_DAUCA G2/mitotic-specific cyclin\nAPSMTTPEPASKRRVVLGEISNNSS\nAVSGNEDLLCREFEVPK\n>second one\nMRAIL\n";

    #[test]
    fn parse_concatenates_lines() {
        let recs = parse_fasta(SAMPLE);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].0, "CG2A_DAUCA G2/mitotic-specific cyclin");
        assert_eq!(recs[0].1.len(), 25 + 17);
        assert_eq!(recs[1].1.bytes(), b"MRAIL");
    }

    #[test]
    fn roundtrip() {
        let recs = parse_fasta(SAMPLE);
        let text = to_fasta(&recs);
        let again = parse_fasta(&text);
        assert_eq!(recs, again);
    }

    #[test]
    fn wraps_long_sequences() {
        let recs = vec![("x".to_owned(), Sequence::new(vec![b'A'; 130]))];
        let text = to_fasta(&recs);
        let body: Vec<&str> = text.lines().skip(1).collect();
        assert_eq!(body.len(), 3);
        assert_eq!(body[0].len(), 60);
        assert_eq!(body[2].len(), 10);
    }

    #[test]
    fn garbage_before_header_ignored() {
        let recs = parse_fasta("; comment\nnoise\n>h\nAB\n");
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].1.bytes(), b"AB");
    }

    #[test]
    fn empty_input() {
        assert!(parse_fasta("").is_empty());
    }
}
