//! Property tests of the sequence-mining kernels: GST vs brute force,
//! matcher invariants, and the anti-monotone pruning property.

use proptest::prelude::*;
use seqmine::{min_mutations, occurrence_number, Gst, Motif, Sequence};

fn arb_seqs() -> impl Strategy<Value = Vec<Sequence>> {
    prop::collection::vec("[ABC]{1,12}", 1..6)
        .prop_map(|v| v.into_iter().map(|s| Sequence::from_str(&s)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gst_occurrence_equals_brute_force(
        seqs in arb_seqs(),
        pat in "[ABC]{1,5}",
    ) {
        let gst = Gst::build(&seqs);
        let brute = seqs.iter().filter(|s| s.contains(pat.as_bytes())).count();
        prop_assert_eq!(gst.occurrence(pat.as_bytes()), brute);
    }

    #[test]
    fn gst_extensions_are_sound_and_complete(
        seqs in arb_seqs(),
        pat in "[ABC]{0,4}",
    ) {
        let gst = Gst::build(&seqs);
        let ext = gst.extensions(pat.as_bytes());
        for c in [b'A', b'B', b'C'] {
            let mut q = pat.as_bytes().to_vec();
            q.push(c);
            let occurs = seqs.iter().any(|s| s.contains(&q));
            prop_assert_eq!(
                ext.contains(&c),
                occurs,
                "pattern {:?} extension {}", pat, c as char
            );
        }
    }

    #[test]
    fn min_mutations_bounded_by_length(
        seq in "[ABC]{0,12}",
        pat in "[ABD]{1,6}",
    ) {
        let s = Sequence::from_str(&seq);
        let m = Motif::single(pat.as_bytes());
        let cost = min_mutations(&m, &s);
        prop_assert!(cost <= pat.len(), "deleting everything costs |P|");
        // Exact containment iff zero cost.
        prop_assert_eq!(cost == 0, s.contains(pat.as_bytes()));
    }

    #[test]
    fn occurrence_monotone_in_mutation_budget(
        seqs in arb_seqs(),
        pat in "[ABC]{1,5}",
    ) {
        let m = Motif::single(pat.as_bytes());
        let mut prev = 0;
        for budget in 0..=pat.len() {
            let occ = occurrence_number(&m, &seqs, budget);
            prop_assert!(occ >= prev);
            prev = occ;
        }
        prop_assert_eq!(prev, seqs.len(), "budget >= |P| matches everything");
    }

    #[test]
    fn prefix_and_suffix_dominate(
        seqs in arb_seqs(),
        pat in "[ABC]{2,5}",
        budget in 0usize..3,
    ) {
        // The E-dag pruning property: immediate subpatterns occur at
        // least as often.
        let p = pat.as_bytes();
        let whole = occurrence_number(&Motif::single(p), &seqs, budget);
        let prefix = occurrence_number(&Motif::single(&p[..p.len() - 1]), &seqs, budget);
        let suffix = occurrence_number(&Motif::single(&p[1..]), &seqs, budget);
        prop_assert!(prefix >= whole);
        prop_assert!(suffix >= whole);
    }

    #[test]
    fn two_segment_cost_bounded_by_concatenation(
        seq in "[ABC]{2,12}",
        a in "[ABC]{1,3}",
        b in "[ABC]{1,3}",
    ) {
        // *A*B* is easier to match than *AB* (the VLDC can absorb a gap).
        let s = Sequence::from_str(&seq);
        let split = Motif::new(vec![a.as_bytes().to_vec(), b.as_bytes().to_vec()]);
        let joined = Motif::single(format!("{a}{b}").as_bytes());
        prop_assert!(min_mutations(&split, &s) <= min_mutations(&joined, &s));
    }
}
