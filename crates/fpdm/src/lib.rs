//! # `fpdm` — Free Parallel Data Mining (umbrella crate)
//!
//! One-stop re-export of the workspace reproducing Bin Li's 1998 NYU
//! dissertation *Free Parallel Data Mining*: the E-dag/E-tree framework
//! for pattern-lattice mining, its biological and market-basket
//! applications, the NyuMiner classification-tree family, data-parallel
//! classification, the PLinda coordination substrate, and the
//! network-of-workstations simulator.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.
//!
//! ```
//! use fpdm::core::prelude::*;
//!
//! let problem = ToySeq::new(vec!["FFRR", "MRRM", "MTRM"], 2, usize::MAX);
//! assert_eq!(sequential_edt(&problem).good, sequential_ett(&problem).good);
//! ```

#![warn(missing_docs)]

/// The E-dag/E-tree framework (primary contribution).
pub use fpdm_core as core;

/// PLinda-style tuple space, transactions, fault-tolerant runtime.
pub use plinda;

/// Discrete-event network-of-workstations simulator.
pub use nowsim;

/// Protein sequence motif discovery.
pub use seqmine;

/// RNA secondary-structure tree motif discovery.
pub use treemine;

/// Association rule mining.
pub use assoc;

/// NyuMiner classification trees, CART and C4.5 baselines.
pub use classify;

/// Data-parallel classification-tree mining.
pub use parmine;

/// Seeded synthetic data generators.
pub use datagen;

/// Frequent episode discovery (the §8.2 future-work application).
pub use episodes;

/// Mining-as-a-service front end: resident service, catalog, admission.
pub use fpdm_service as service;

/// Deterministic virtual-time load generation for the service.
pub use fpdm_loadgen as loadgen;
