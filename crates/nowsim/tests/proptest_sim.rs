//! Property tests of the discrete-event NOW simulator: conservation and
//! bound laws that must hold for every workload and machine pool.

use nowsim::{MachineSpec, SimConfig, Simulator};
use proptest::prelude::*;

fn arb_costs() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..10.0, 1..30)
}

fn arb_speeds() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.25f64..4.0, 1..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_tasks_complete(costs in arb_costs(), speeds in arb_speeds()) {
        let machines: Vec<MachineSpec> =
            speeds.iter().map(|&s| MachineSpec::with_speed(s)).collect();
        let r = Simulator::run_static(&costs, &machines, &SimConfig::zero_overhead());
        prop_assert_eq!(r.completed as usize, costs.len());
        prop_assert_eq!(r.aborted, 0);
    }

    #[test]
    fn makespan_lower_bounds(costs in arb_costs(), speeds in arb_speeds()) {
        let machines: Vec<MachineSpec> =
            speeds.iter().map(|&s| MachineSpec::with_speed(s)).collect();
        let r = Simulator::run_static(&costs, &machines, &SimConfig::zero_overhead());
        let total: f64 = costs.iter().sum();
        let aggregate_speed: f64 = speeds.iter().sum();
        let max_speed = speeds.iter().cloned().fold(0.0, f64::max);
        let longest = costs.iter().cloned().fold(0.0, f64::max);
        // Work conservation: cannot beat aggregate throughput.
        prop_assert!(r.makespan >= total / aggregate_speed - 1e-9);
        // Critical path: the longest task on the fastest machine.
        prop_assert!(r.makespan >= longest / max_speed - 1e-9);
    }

    #[test]
    fn makespan_upper_bound_greedy(costs in arb_costs(), speeds in arb_speeds()) {
        // Greedy list scheduling is a 2-approximation (Graham): makespan
        // <= total/aggregate + longest/min_speed.
        let machines: Vec<MachineSpec> =
            speeds.iter().map(|&s| MachineSpec::with_speed(s)).collect();
        let r = Simulator::run_static(&costs, &machines, &SimConfig::zero_overhead());
        let total: f64 = costs.iter().sum();
        let aggregate: f64 = speeds.iter().sum();
        let min_speed = speeds.iter().cloned().fold(f64::INFINITY, f64::min);
        let longest = costs.iter().cloned().fold(0.0, f64::max);
        prop_assert!(
            r.makespan <= total / aggregate + longest / min_speed + 1e-9,
            "makespan {} exceeds Graham bound", r.makespan
        );
    }

    #[test]
    fn more_machines_never_slower(costs in arb_costs(), n in 1usize..6) {
        let cfg = SimConfig::zero_overhead();
        let small: Vec<MachineSpec> = (0..n).map(|_| MachineSpec::ideal()).collect();
        let big: Vec<MachineSpec> = (0..n + 1).map(|_| MachineSpec::ideal()).collect();
        let r_small = Simulator::run_static(&costs, &small, &cfg);
        let r_big = Simulator::run_static(&costs, &big, &cfg);
        // Greedy FIFO with identical machines: adding a machine cannot
        // hurt on a static bag (no dependencies).
        prop_assert!(r_big.makespan <= r_small.makespan + 1e-9);
    }

    #[test]
    fn overheads_only_add_time(costs in arb_costs()) {
        let machines = vec![MachineSpec::ideal(), MachineSpec::ideal()];
        let fast = Simulator::run_static(&costs, &machines, &SimConfig::zero_overhead());
        let slow = Simulator::run_static(&costs, &machines, &SimConfig::lan_default());
        prop_assert!(slow.makespan >= fast.makespan - 1e-9);
    }

    #[test]
    fn busy_time_consistent(costs in arb_costs(), speeds in arb_speeds()) {
        let machines: Vec<MachineSpec> =
            speeds.iter().map(|&s| MachineSpec::with_speed(s)).collect();
        let r = Simulator::run_static(&costs, &machines, &SimConfig::zero_overhead());
        // Total machine-seconds of execution equals the speed-adjusted
        // work.
        let total_busy: f64 = r.busy_time.iter().sum();
        let work: f64 = costs.iter().sum();
        // Each task of cost c on machine of speed s takes c/s seconds;
        // with distinct speeds busy time differs from work, but is
        // bounded by work / min_speed and work / max_speed.
        let min_speed = speeds.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_speed = speeds.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(total_busy <= work / min_speed + 1e-9);
        prop_assert!(total_busy >= work / max_speed - 1e-9);
        // And no machine is busy longer than the makespan.
        for &b in &r.busy_time {
            prop_assert!(b <= r.makespan + 1e-9);
        }
    }
}
