//! Property tests of the discrete-event NOW simulator: conservation and
//! bound laws that must hold for every workload and machine pool.

use nowsim::{MachineSpec, SimConfig, SimTask, Simulator, StaticProgram};
use proptest::prelude::*;

fn arb_costs() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..10.0, 1..30)
}

fn arb_speeds() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.25f64..4.0, 1..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_tasks_complete(costs in arb_costs(), speeds in arb_speeds()) {
        let machines: Vec<MachineSpec> =
            speeds.iter().map(|&s| MachineSpec::with_speed(s)).collect();
        let r = Simulator::run_static(&costs, &machines, &SimConfig::zero_overhead());
        prop_assert_eq!(r.completed as usize, costs.len());
        prop_assert_eq!(r.aborted, 0);
    }

    #[test]
    fn makespan_lower_bounds(costs in arb_costs(), speeds in arb_speeds()) {
        let machines: Vec<MachineSpec> =
            speeds.iter().map(|&s| MachineSpec::with_speed(s)).collect();
        let r = Simulator::run_static(&costs, &machines, &SimConfig::zero_overhead());
        let total: f64 = costs.iter().sum();
        let aggregate_speed: f64 = speeds.iter().sum();
        let max_speed = speeds.iter().cloned().fold(0.0, f64::max);
        let longest = costs.iter().cloned().fold(0.0, f64::max);
        // Work conservation: cannot beat aggregate throughput.
        prop_assert!(r.makespan >= total / aggregate_speed - 1e-9);
        // Critical path: the longest task on the fastest machine.
        prop_assert!(r.makespan >= longest / max_speed - 1e-9);
    }

    #[test]
    fn makespan_upper_bound_greedy(costs in arb_costs(), speeds in arb_speeds()) {
        // Greedy list scheduling is a 2-approximation (Graham): makespan
        // <= total/aggregate + longest/min_speed.
        let machines: Vec<MachineSpec> =
            speeds.iter().map(|&s| MachineSpec::with_speed(s)).collect();
        let r = Simulator::run_static(&costs, &machines, &SimConfig::zero_overhead());
        let total: f64 = costs.iter().sum();
        let aggregate: f64 = speeds.iter().sum();
        let min_speed = speeds.iter().cloned().fold(f64::INFINITY, f64::min);
        let longest = costs.iter().cloned().fold(0.0, f64::max);
        prop_assert!(
            r.makespan <= total / aggregate + longest / min_speed + 1e-9,
            "makespan {} exceeds Graham bound", r.makespan
        );
    }

    #[test]
    fn more_machines_never_slower(costs in arb_costs(), n in 1usize..6) {
        let cfg = SimConfig::zero_overhead();
        let small: Vec<MachineSpec> = (0..n).map(|_| MachineSpec::ideal()).collect();
        let big: Vec<MachineSpec> = (0..n + 1).map(|_| MachineSpec::ideal()).collect();
        let r_small = Simulator::run_static(&costs, &small, &cfg);
        let r_big = Simulator::run_static(&costs, &big, &cfg);
        // Greedy FIFO with identical machines: adding a machine cannot
        // hurt on a static bag (no dependencies).
        prop_assert!(r_big.makespan <= r_small.makespan + 1e-9);
    }

    #[test]
    fn overheads_only_add_time(costs in arb_costs()) {
        let machines = vec![MachineSpec::ideal(), MachineSpec::ideal()];
        let fast = Simulator::run_static(&costs, &machines, &SimConfig::zero_overhead());
        let slow = Simulator::run_static(&costs, &machines, &SimConfig::lan_default());
        prop_assert!(slow.makespan >= fast.makespan - 1e-9);
    }

    #[test]
    fn metered_ledger_reconciles_with_report(costs in arb_costs(), speeds in arb_speeds()) {
        // The metrics ledger of a metered run must agree with the
        // SimReport it rode along with: task counts, per-machine busy
        // time (== speed-adjusted work with zero overhead), utilisation
        // within [0, 1], and the cross-layer invariant checker clean.
        let machines: Vec<MachineSpec> =
            speeds.iter().map(|&s| MachineSpec::with_speed(s)).collect();
        let reg = plinda::MetricsRegistry::new();
        let mut prog = StaticProgram::new(
            costs.iter().enumerate().map(|(i, &c)| SimTask::new(i as u64, c)).collect(),
        );
        let r = Simulator::run_metered(&mut prog, &machines, &SimConfig::zero_overhead(), Some(&reg));
        let snap = reg.snapshot();
        prop_assert_eq!(snap.counter("sim.tasks.admitted"), costs.len() as u64);
        prop_assert_eq!(snap.counter("sim.tasks.completed"), r.completed);
        prop_assert_eq!(snap.counter("sim.tasks.aborted"), snap.counter("sim.tasks.requeued"));
        for (m, &b) in r.busy_time.iter().enumerate() {
            let ns = snap.counter(&format!("sim.machine.{m}.busy_ns"));
            prop_assert_eq!(ns, (b * 1e9).round() as u64, "machine {}", m);
            let util = snap.gauge(&format!("sim.machine.{m}.util_ppm")).unwrap();
            prop_assert!((0..=1_000_000).contains(&util.value), "util {}", util.value);
        }
        // Busy time is work / speed: scaling each machine's busy time
        // back by its speed recovers exactly the work it executed, and
        // the machines together executed the whole bag.
        let weighted: f64 = r.busy_time.iter().zip(&speeds).map(|(b, s)| b * s).sum();
        let work: f64 = costs.iter().sum();
        prop_assert!((weighted - work).abs() < 1e-6 * work.max(1.0),
            "busy*speed {} != work {}", weighted, work);
        let violations = plinda::metrics::check_snapshot(&snap);
        prop_assert!(violations.is_empty(), "{:?}", violations);
    }

    #[test]
    fn metered_aborts_match_requeues_under_owner_churn(costs in arb_costs(), seed in 0u64..64) {
        // Owner-occupied pools abort and requeue work; the ledger must
        // record exactly one requeue per abort and keep every machine's
        // utilisation within [0, 1] even though aborted execution time
        // was spent without completing anything.
        let pattern = nowsim::traces::OwnerPattern { busy_mean: 5.0, idle_mean: 10.0 };
        let pool = nowsim::traces::workday_pool(seed, 3, 1_000_000.0, &pattern);
        let cfg = SimConfig { requeue_delay: 0.5, ..SimConfig::zero_overhead() };
        let reg = plinda::MetricsRegistry::new();
        let mut prog = StaticProgram::new(
            costs.iter().enumerate().map(|(i, &c)| SimTask::new(i as u64, c)).collect(),
        );
        let r = Simulator::run_metered(&mut prog, &pool, &cfg, Some(&reg));
        let snap = reg.snapshot();
        prop_assert_eq!(snap.counter("sim.tasks.aborted"), r.aborted);
        prop_assert_eq!(snap.counter("sim.tasks.requeued"), r.aborted);
        prop_assert_eq!(snap.counter("sim.tasks.completed"), costs.len() as u64);
        for m in 0..pool.len() {
            let util = snap.gauge(&format!("sim.machine.{m}.util_ppm")).unwrap();
            prop_assert!((0..=1_000_000).contains(&util.value), "util {}", util.value);
        }
        let violations = plinda::metrics::check_snapshot(&snap);
        prop_assert!(violations.is_empty(), "{:?}", violations);
    }

    #[test]
    fn busy_time_consistent(costs in arb_costs(), speeds in arb_speeds()) {
        let machines: Vec<MachineSpec> =
            speeds.iter().map(|&s| MachineSpec::with_speed(s)).collect();
        let r = Simulator::run_static(&costs, &machines, &SimConfig::zero_overhead());
        // Total machine-seconds of execution equals the speed-adjusted
        // work.
        let total_busy: f64 = r.busy_time.iter().sum();
        let work: f64 = costs.iter().sum();
        // Each task of cost c on machine of speed s takes c/s seconds;
        // with distinct speeds busy time differs from work, but is
        // bounded by work / min_speed and work / max_speed.
        let min_speed = speeds.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_speed = speeds.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(total_busy <= work / min_speed + 1e-9);
        prop_assert!(total_busy >= work / max_speed - 1e-9);
        // And no machine is busy longer than the makespan.
        for &b in &r.busy_time {
            prop_assert!(b <= r.makespan + 1e-9);
        }
    }
}
