//! # `nowsim` — a discrete-event simulator of a network of workstations
//!
//! The dissertation's Chapter 4 and 6 experiments ran on LANs of up to ~50
//! Sun SPARC 5 workstations harvesting idle cycles. The quantities those
//! experiments measure — efficiency vs. machine count, the cost of load
//! imbalance, the benefit of the adaptive master, super-linear effects,
//! recovery from owner-return "failures" — are properties of the *task
//! structure and cost model*, not of the 1998 hardware. This crate
//! reproduces the platform as a deterministic discrete-event simulation:
//!
//! * a pool of [`MachineSpec`]s, each with a speed factor, optional
//!   owner-activity (busy) intervals during which it takes no work, and an
//!   optional crash time;
//! * a dynamic bag-of-tasks workload, described by a [`SimProgram`] that
//!   supplies initial tasks and spawns new tasks when tasks complete
//!   (exactly how the E-tree traversal workers of §4.2 generate work);
//! * a serial **master bottleneck**: every task passes through the master
//!   before becoming visible to workers, occupying the master for
//!   `master_overhead` simulated seconds — the master contention the
//!   dissertation's §2.4.4 discussion warns about;
//! * per-task `dispatch_overhead` (tuple-op latency on the worker side);
//! * PLinda-style recovery: when a machine crashes or its owner returns
//!   mid-task, the in-flight task is aborted and re-queued after
//!   `requeue_delay` (transaction abort + failure detection).
//!
//! Real parallel runs on threads (via the `plinda` crate) validate the
//! simulator at small machine counts; the simulator extends the curves to
//! machine counts this container does not have.
//!
//! ## Example
//!
//! ```
//! use nowsim::{MachineSpec, SimConfig, Simulator};
//!
//! // Ten equal tasks of 1s on two machines: perfect 2x speedup.
//! let report = Simulator::run_static(
//!     &[1.0; 10],
//!     &[MachineSpec::ideal(), MachineSpec::ideal()],
//!     &SimConfig::zero_overhead(),
//! );
//! assert!((report.makespan - 5.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

use plinda::metrics::{Counter, Gauge, Histogram};
use plinda::MetricsRegistry;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Simulated seconds → integer nanoseconds, the unit every duration
/// metric uses so simulated and real ledgers share one schema.
fn secs_to_ns(s: f64) -> u64 {
    (s.max(0.0) * 1e9).round() as u64
}

/// One simulated workstation.
#[derive(Debug, Clone)]
pub struct MachineSpec {
    /// Relative speed: a task of cost `c` takes `c / speed` seconds here.
    pub speed: f64,
    /// Intervals `[from, to)` of simulated time during which the
    /// workstation's owner is active: the machine takes no new work and
    /// aborts any task in flight when an interval begins (the "retreat" of
    /// §2.4.5 / PLinda's simulated failure of §7.1.1).
    pub busy: Vec<(f64, f64)>,
    /// If set, the machine crashes permanently at this time.
    pub crash_at: Option<f64>,
}

impl MachineSpec {
    /// A machine of speed 1 that is always idle and never fails.
    pub fn ideal() -> Self {
        MachineSpec {
            speed: 1.0,
            busy: Vec::new(),
            crash_at: None,
        }
    }

    /// An always-available machine with the given speed factor.
    pub fn with_speed(speed: f64) -> Self {
        assert!(speed > 0.0, "machine speed must be positive");
        MachineSpec {
            speed,
            busy: Vec::new(),
            crash_at: None,
        }
    }

    /// Add an owner-busy interval.
    pub fn busy_between(mut self, from: f64, to: f64) -> Self {
        assert!(from < to, "busy interval must be non-empty");
        self.busy.push((from, to));
        self
    }

    /// Set a permanent crash time.
    pub fn crashing_at(mut self, t: f64) -> Self {
        self.crash_at = Some(t);
        self
    }
}

/// Global cost-model knobs.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Serial master time consumed per task before it becomes visible to
    /// workers (task creation + tuple-space `out` handled by the server).
    pub master_overhead: f64,
    /// Latency a worker pays to fetch a task and report its result
    /// (tuple-space `in` + `out` round trips).
    pub dispatch_overhead: f64,
    /// Delay between a failure and the aborted task reappearing in the bag
    /// (failure detection + transaction abort).
    pub requeue_delay: f64,
}

impl SimConfig {
    /// All overheads zero (ideal machine; used in tests).
    pub fn zero_overhead() -> Self {
        SimConfig {
            master_overhead: 0.0,
            dispatch_overhead: 0.0,
            requeue_delay: 0.0,
        }
    }

    /// Overheads representative of the dissertation's LAN environment, in
    /// simulated seconds: a few milliseconds of master work and tuple
    /// latency per task, 100 ms to detect a failure and requeue.
    pub fn lan_default() -> Self {
        SimConfig {
            master_overhead: 0.004,
            dispatch_overhead: 0.012,
            requeue_delay: 0.1,
        }
    }
}

/// A unit of work in the bag of tasks.
#[derive(Debug, Clone)]
pub struct SimTask {
    /// Caller-meaningful identifier (e.g. an E-tree node index).
    pub id: u64,
    /// Work content in speed-1 seconds.
    pub cost: f64,
    /// If set, only this machine may run the task (used to pin the
    /// master's own share of the work, e.g. growing the main tree in
    /// Parallel NyuMiner-CV).
    pub pinned: Option<usize>,
}

impl SimTask {
    /// Unpinned task.
    pub fn new(id: u64, cost: f64) -> Self {
        SimTask {
            id,
            cost,
            pinned: None,
        }
    }

    /// Task that must run on machine `m`.
    pub fn pinned(id: u64, cost: f64, m: usize) -> Self {
        SimTask {
            id,
            cost,
            pinned: Some(m),
        }
    }
}

/// A dynamic workload: the simulator calls [`SimProgram::on_complete`]
/// whenever a task finishes; returned tasks join the bag (after the master
/// overhead). This is how E-tree workers "out" child work tuples.
pub trait SimProgram {
    /// Tasks available at time zero.
    fn initial_tasks(&mut self) -> Vec<SimTask>;
    /// Tasks spawned by the completion of `task`.
    fn on_complete(&mut self, task: &SimTask) -> Vec<SimTask>;
}

/// A static bag of tasks (no dynamic spawning).
pub struct StaticProgram {
    tasks: Vec<SimTask>,
}

impl StaticProgram {
    /// Wrap a fixed task list.
    pub fn new(tasks: Vec<SimTask>) -> Self {
        StaticProgram { tasks }
    }
}

impl SimProgram for StaticProgram {
    fn initial_tasks(&mut self) -> Vec<SimTask> {
        std::mem::take(&mut self.tasks)
    }
    fn on_complete(&mut self, _task: &SimTask) -> Vec<SimTask> {
        Vec::new()
    }
}

/// What the simulation observed.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Completion time of the last task (simulated seconds).
    pub makespan: f64,
    /// Tasks completed.
    pub completed: u64,
    /// Task executions aborted by failures/owner returns (each such task
    /// was re-queued and eventually completed elsewhere).
    pub aborted: u64,
    /// Per-machine busy (executing) time.
    pub busy_time: Vec<f64>,
}

impl SimReport {
    /// `sequential_time / (machines * makespan)` — the efficiency measure
    /// of §4.3.
    pub fn efficiency(&self, sequential_time: f64, machines: usize) -> f64 {
        sequential_time / (machines as f64 * self.makespan)
    }

    /// `sequential_time / makespan`.
    pub fn speedup(&self, sequential_time: f64) -> f64 {
        sequential_time / self.makespan
    }
}

#[derive(Debug, Clone, PartialEq)]
enum EventKind {
    /// Task finished on machine.
    Finish { machine: usize, task_seq: usize },
    /// Task (re-)enters the visible bag.
    TaskVisible { task_seq: usize },
    /// Owner returns to machine.
    OwnerArrive { machine: usize },
    /// Owner leaves machine.
    OwnerLeave { machine: usize },
    /// Machine crashes permanently.
    Crash { machine: usize },
}

#[derive(Debug, Clone)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

#[derive(Debug, Clone, PartialEq)]
enum MachineState {
    Idle,
    /// Running `task_seq` since `started_at`; the matching finish event is
    /// invalidated if the run is aborted first.
    Running {
        task_seq: usize,
        started_at: f64,
    },
    OwnerBusy,
    Dead,
}

/// Cached live-ledger handles (see [`plinda::metrics`]); updates through
/// them are lock-free, so metering does not perturb the event loop.
struct SimMeter {
    admitted: Counter,
    requeued: Counter,
    aborted: Counter,
    completed: Counter,
    depth: Gauge,
    duration: Histogram,
}

impl SimMeter {
    fn new(reg: &MetricsRegistry) -> Self {
        SimMeter {
            admitted: reg.counter("sim.tasks.admitted"),
            requeued: reg.counter("sim.tasks.requeued"),
            aborted: reg.counter("sim.tasks.aborted"),
            completed: reg.counter("sim.tasks.completed"),
            depth: reg.gauge("sim.bag.depth"),
            duration: reg.histogram("sim.task.duration_ns"),
        }
    }
}

struct Engine<'a> {
    machines: &'a [MachineSpec],
    config: &'a SimConfig,
    reg: Option<&'a MetricsRegistry>,
    met: Option<SimMeter>,
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    tasks: Vec<SimTask>,
    bag: VecDeque<usize>,
    pinned: Vec<VecDeque<usize>>,
    master_free_at: f64,
    state: Vec<MachineState>,
    busy_time: Vec<f64>,
    completed: u64,
    aborted: u64,
    admitted: u64,
    outstanding: u64,
    makespan: f64,
}

impl<'a> Engine<'a> {
    fn new(
        machines: &'a [MachineSpec],
        config: &'a SimConfig,
        reg: Option<&'a MetricsRegistry>,
    ) -> Self {
        let n = machines.len();
        let mut e = Engine {
            machines,
            config,
            reg,
            met: reg.map(SimMeter::new),
            heap: BinaryHeap::new(),
            seq: 0,
            tasks: Vec::new(),
            bag: VecDeque::new(),
            pinned: vec![VecDeque::new(); n],
            master_free_at: 0.0,
            state: vec![MachineState::Idle; n],
            busy_time: vec![0.0; n],
            completed: 0,
            aborted: 0,
            admitted: 0,
            outstanding: 0,
            makespan: 0.0,
        };
        for (m, spec) in machines.iter().enumerate() {
            for &(from, to) in &spec.busy {
                e.push(from, EventKind::OwnerArrive { machine: m });
                e.push(to, EventKind::OwnerLeave { machine: m });
            }
            if let Some(t) = spec.crash_at {
                e.push(t, EventKind::Crash { machine: m });
            }
        }
        e
    }

    fn push(&mut self, time: f64, kind: EventKind) {
        self.seq += 1;
        self.heap.push(Reverse(Event {
            time,
            seq: self.seq,
            kind,
        }));
    }

    /// Route freshly created tasks through the serial master pipe.
    fn admit(&mut self, now: f64, new_tasks: Vec<SimTask>) {
        for t in new_tasks {
            let visible_at = self.master_free_at.max(now) + self.config.master_overhead;
            self.master_free_at = visible_at;
            let task_seq = self.tasks.len();
            self.tasks.push(t);
            self.outstanding += 1;
            self.admitted += 1;
            if let Some(m) = &self.met {
                m.admitted.inc();
            }
            self.push(visible_at, EventKind::TaskVisible { task_seq });
        }
    }

    /// Re-insert an aborted task directly into the bag after the requeue
    /// delay (it already passed through the master once).
    fn requeue(&mut self, now: f64, task_seq: usize) {
        if let Some(m) = &self.met {
            m.requeued.inc();
        }
        self.push(
            now + self.config.requeue_delay,
            EventKind::TaskVisible { task_seq },
        );
    }

    /// Update the bag-depth gauge (its high-water mark is the ledger's
    /// queue watermark) to the count of visible, unassigned tasks.
    fn note_depth(&self) {
        if let Some(m) = &self.met {
            let d = self.bag.len() + self.pinned.iter().map(VecDeque::len).sum::<usize>();
            m.depth.set(d as i64);
        }
    }

    fn try_assign(&mut self, now: f64, m: usize) {
        if self.state[m] != MachineState::Idle {
            return;
        }
        let next = self.pinned[m].pop_front().or_else(|| {
            for i in 0..self.bag.len() {
                let ts = self.bag[i];
                match self.tasks[ts].pinned {
                    Some(p) if p != m => continue,
                    _ => {
                        self.bag.remove(i);
                        return Some(ts);
                    }
                }
            }
            None
        });
        if let Some(task_seq) = next {
            let dur = (self.tasks[task_seq].cost + self.config.dispatch_overhead)
                / self.machines[m].speed;
            self.state[m] = MachineState::Running {
                task_seq,
                started_at: now,
            };
            self.push(
                now + dur,
                EventKind::Finish {
                    machine: m,
                    task_seq,
                },
            );
            self.note_depth();
        }
    }

    fn assign_all(&mut self, now: f64) {
        for m in 0..self.machines.len() {
            self.try_assign(now, m);
        }
    }

    fn run(mut self, program: &mut dyn SimProgram) -> SimReport {
        let initial = program.initial_tasks();
        self.admit(0.0, initial);

        while let Some(Reverse(ev)) = self.heap.pop() {
            let now = ev.time;
            match ev.kind {
                EventKind::TaskVisible { task_seq } => {
                    match self.tasks[task_seq].pinned {
                        Some(p) => self.pinned[p].push_back(task_seq),
                        None => self.bag.push_back(task_seq),
                    }
                    self.note_depth();
                    self.assign_all(now);
                }
                EventKind::Finish { machine, task_seq } => {
                    let started_at = match self.state[machine] {
                        MachineState::Running {
                            task_seq: ts,
                            started_at,
                        } if ts == task_seq => started_at,
                        _ => continue, // stale finish from an aborted run
                    };
                    self.state[machine] = MachineState::Idle;
                    self.busy_time[machine] += now - started_at;
                    self.completed += 1;
                    self.outstanding -= 1;
                    self.makespan = self.makespan.max(now);
                    if let Some(m) = &self.met {
                        m.completed.inc();
                        m.duration.observe(secs_to_ns(now - started_at));
                    }
                    let spawned = program.on_complete(&self.tasks[task_seq]);
                    self.admit(now, spawned);
                    self.assign_all(now);
                    if self.outstanding == 0 {
                        break;
                    }
                }
                EventKind::OwnerArrive { machine } | EventKind::Crash { machine } => {
                    let crash = matches!(ev.kind, EventKind::Crash { .. });
                    if let MachineState::Running {
                        task_seq,
                        started_at,
                    } = self.state[machine]
                    {
                        // Only the executed prefix counts as busy time, so
                        // per-machine utilisation stays within [0, 1] even
                        // on abort-heavy runs.
                        self.busy_time[machine] += now - started_at;
                        self.aborted += 1;
                        if let Some(m) = &self.met {
                            m.aborted.inc();
                        }
                        self.requeue(now, task_seq);
                    }
                    self.state[machine] = if crash {
                        MachineState::Dead
                    } else {
                        MachineState::OwnerBusy
                    };
                }
                EventKind::OwnerLeave { machine } => {
                    if self.state[machine] != MachineState::Dead {
                        self.state[machine] = MachineState::Idle;
                        self.assign_all(now);
                    }
                }
            }
        }

        assert_eq!(
            self.outstanding, 0,
            "simulation deadlocked (all machines dead, or tasks pinned to \
             a dead machine?)"
        );

        // Fold the per-machine/master summary into the ledger, mirroring
        // what `TaskFarm::finish` does for real runs.
        if let Some(reg) = self.reg {
            for (m, &b) in self.busy_time.iter().enumerate() {
                reg.counter(&format!("sim.machine.{m}.busy_ns"))
                    .add(secs_to_ns(b));
                let util = if self.makespan > 0.0 {
                    ((b / self.makespan * 1e6).round() as i64).min(1_000_000)
                } else {
                    0
                };
                reg.gauge(&format!("sim.machine.{m}.util_ppm")).set(util);
            }
            reg.counter("sim.master.busy_ns").add(secs_to_ns(
                self.admitted as f64 * self.config.master_overhead,
            ));
            reg.counter("sim.makespan_ns")
                .add(secs_to_ns(self.makespan));
        }

        SimReport {
            makespan: self.makespan,
            completed: self.completed,
            aborted: self.aborted,
            busy_time: self.busy_time,
        }
    }
}

/// The discrete-event engine entry points.
pub struct Simulator;

impl Simulator {
    /// Run a static list of task costs (speed-1 seconds) to completion.
    pub fn run_static(costs: &[f64], machines: &[MachineSpec], config: &SimConfig) -> SimReport {
        let tasks = costs
            .iter()
            .enumerate()
            .map(|(i, &c)| SimTask::new(i as u64, c))
            .collect();
        Self::run(&mut StaticProgram::new(tasks), machines, config)
    }

    /// Run `program` on `machines` to completion and report.
    pub fn run(
        program: &mut dyn SimProgram,
        machines: &[MachineSpec],
        config: &SimConfig,
    ) -> SimReport {
        Self::run_metered(program, machines, config, None)
    }

    /// [`Simulator::run`] with an optional metrics registry: live
    /// `sim.tasks.*` counters, a `sim.bag.depth` gauge and a
    /// `sim.task.duration_ns` histogram during the run, plus per-machine
    /// `busy_ns`/`util_ppm` and master/makespan totals folded in at the
    /// end — the simulated twin of the ledger a real [`plinda::TaskFarm`]
    /// run produces, in the same snapshot schema.
    pub fn run_metered(
        program: &mut dyn SimProgram,
        machines: &[MachineSpec],
        config: &SimConfig,
        metrics: Option<&MetricsRegistry>,
    ) -> SimReport {
        assert!(!machines.is_empty(), "need at least one machine");
        Engine::new(machines, config, metrics).run(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_machine_serializes() {
        let r = Simulator::run_static(
            &[1.0, 2.0, 3.0],
            &[MachineSpec::ideal()],
            &SimConfig::zero_overhead(),
        );
        assert!((r.makespan - 6.0).abs() < 1e-9);
        assert_eq!(r.completed, 3);
    }

    #[test]
    fn two_machines_halve_even_work() {
        let r = Simulator::run_static(
            &[1.0; 10],
            &[MachineSpec::ideal(), MachineSpec::ideal()],
            &SimConfig::zero_overhead(),
        );
        assert!((r.makespan - 5.0).abs() < 1e-9);
        assert!((r.efficiency(10.0, 2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn load_imbalance_shows_in_makespan() {
        let mut costs = vec![10.0];
        costs.extend(std::iter::repeat_n(1.0, 9));
        let r = Simulator::run_static(
            &costs,
            &[MachineSpec::ideal(), MachineSpec::ideal()],
            &SimConfig::zero_overhead(),
        );
        assert!((r.makespan - 10.0).abs() < 1e-9);
    }

    #[test]
    fn speed_factors_scale_execution() {
        let r = Simulator::run_static(
            &[4.0],
            &[MachineSpec::with_speed(2.0)],
            &SimConfig::zero_overhead(),
        );
        assert!((r.makespan - 2.0).abs() < 1e-9);
    }

    #[test]
    fn master_overhead_serializes_task_admission() {
        let cfg = SimConfig {
            master_overhead: 1.0,
            dispatch_overhead: 0.0,
            requeue_delay: 0.0,
        };
        // 4 zero-cost tasks still take 4 master-seconds to admit.
        let r = Simulator::run_static(&[0.0; 4], &[MachineSpec::ideal()], &cfg);
        assert!((r.makespan - 4.0).abs() < 1e-9);
    }

    #[test]
    fn owner_return_aborts_and_requeues() {
        let cfg = SimConfig {
            master_overhead: 0.0,
            dispatch_overhead: 0.0,
            requeue_delay: 0.5,
        };
        let machines = [
            MachineSpec::ideal().busy_between(1.0, 100.0),
            MachineSpec::ideal(),
        ];
        let r = Simulator::run_static(&[10.0], &machines, &cfg);
        assert_eq!(r.aborted, 1);
        assert_eq!(r.completed, 1);
        // Aborted at 1.0, requeued at 1.5, runs 10s on machine 1.
        assert!((r.makespan - 11.5).abs() < 1e-9, "makespan {}", r.makespan);
    }

    #[test]
    fn crash_with_survivor_completes() {
        let machines = [MachineSpec::ideal().crashing_at(0.5), MachineSpec::ideal()];
        let r = Simulator::run_static(&[2.0, 2.0], &machines, &SimConfig::zero_overhead());
        assert_eq!(r.completed, 2);
        assert!(r.aborted >= 1);
    }

    #[test]
    fn pinned_tasks_wait_for_their_machine() {
        let mut prog =
            StaticProgram::new(vec![SimTask::pinned(0, 1.0, 0), SimTask::pinned(1, 1.0, 0)]);
        let r = Simulator::run(
            &mut prog,
            &[MachineSpec::ideal(), MachineSpec::ideal()],
            &SimConfig::zero_overhead(),
        );
        assert!((r.makespan - 2.0).abs() < 1e-9);
        assert!(r.busy_time[1] < 1e-9);
    }

    /// Completing node i spawns 2i+1 and 2i+2 while i < 7 (15 nodes).
    struct TreeProgram;
    impl SimProgram for TreeProgram {
        fn initial_tasks(&mut self) -> Vec<SimTask> {
            vec![SimTask::new(0, 1.0)]
        }
        fn on_complete(&mut self, task: &SimTask) -> Vec<SimTask> {
            if task.id < 7 {
                vec![
                    SimTask::new(2 * task.id + 1, 1.0),
                    SimTask::new(2 * task.id + 2, 1.0),
                ]
            } else {
                Vec::new()
            }
        }
    }

    #[test]
    fn dynamic_spawning_runs_all_nodes() {
        let r = Simulator::run(
            &mut TreeProgram,
            &vec![MachineSpec::ideal(); 4],
            &SimConfig::zero_overhead(),
        );
        assert_eq!(r.completed, 15);
        // Level widths 1,2,4,8 on 4 machines: 1 + 1 + 1 + 2 = 5 units.
        assert!((r.makespan - 5.0).abs() < 1e-9, "makespan {}", r.makespan);
    }

    #[test]
    fn efficiency_and_speedup_accessors() {
        let r = Simulator::run_static(
            &[1.0; 8],
            &vec![MachineSpec::ideal(); 4],
            &SimConfig::zero_overhead(),
        );
        assert!((r.speedup(8.0) - 4.0).abs() < 1e-9);
        assert!((r.efficiency(8.0, 4) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn heterogeneous_pool_prefers_no_machine_but_work_finishes() {
        let machines = [
            MachineSpec::with_speed(0.5),
            MachineSpec::with_speed(1.0),
            MachineSpec::with_speed(2.0),
        ];
        let r = Simulator::run_static(&[1.0; 30], &machines, &SimConfig::zero_overhead());
        assert_eq!(r.completed, 30);
        // Aggregate speed is 3.5, so the 30 units of work cannot finish
        // before 30/3.5 s; greedy scheduling keeps it close to that bound.
        assert!(r.makespan >= 30.0 / 3.5 - 1e-9);
        assert!(r.makespan <= 11.0, "makespan {}", r.makespan);
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn no_machines_panics() {
        Simulator::run_static(&[1.0], &[], &SimConfig::zero_overhead());
    }

    #[test]
    fn metered_run_ledger_matches_report() {
        let reg = plinda::MetricsRegistry::new();
        let cfg = SimConfig {
            master_overhead: 0.25,
            dispatch_overhead: 0.0,
            requeue_delay: 0.5,
        };
        let machines = [
            MachineSpec::ideal().busy_between(2.0, 100.0),
            MachineSpec::ideal(),
        ];
        let mut prog = StaticProgram::new(vec![
            SimTask::new(0, 10.0),
            SimTask::new(1, 1.0),
            SimTask::new(2, 1.0),
        ]);
        let r = Simulator::run_metered(&mut prog, &machines, &cfg, Some(&reg));
        let snap = reg.snapshot();

        assert_eq!(snap.counter("sim.tasks.admitted"), 3);
        assert_eq!(snap.counter("sim.tasks.completed"), r.completed);
        assert_eq!(snap.counter("sim.tasks.aborted"), r.aborted);
        assert_eq!(
            snap.counter("sim.tasks.requeued"),
            snap.counter("sim.tasks.aborted"),
            "every abort requeues exactly once"
        );
        let durations = snap.histogram("sim.task.duration_ns").unwrap();
        assert_eq!(durations.count, r.completed);
        for m in 0..machines.len() {
            let busy = snap.counter(&format!("sim.machine.{m}.busy_ns"));
            assert_eq!(busy, super::secs_to_ns(r.busy_time[m]));
            let util = snap.gauge(&format!("sim.machine.{m}.util_ppm")).unwrap();
            assert!((0..=1_000_000).contains(&util.value), "util {}", util.value);
        }
        assert_eq!(
            snap.counter("sim.makespan_ns"),
            super::secs_to_ns(r.makespan)
        );
        // Master was occupied for one overhead slot per admitted task.
        assert_eq!(
            snap.counter("sim.master.busy_ns"),
            super::secs_to_ns(3.0 * cfg.master_overhead)
        );
        let violations = plinda::metrics::check_snapshot(&snap);
        assert!(violations.is_empty(), "{violations:?}");
    }
}

/// Owner-activity trace generation: workstation pools whose owners come
/// and go — the "huge amount of idle cycles" of §1.1 that free parallel
/// data mining harvests.
pub mod traces {
    use super::MachineSpec;

    /// A deterministic xorshift generator (this crate avoids a `rand`
    /// dependency in its core; traces only need reproducible variety).
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        /// Uniform f64 in [0, 1).
        fn unit(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }

        fn range(&mut self, lo: f64, hi: f64) -> f64 {
            lo + self.unit() * (hi - lo)
        }
    }

    /// Parameters of a simulated owner's working pattern.
    #[derive(Debug, Clone)]
    pub struct OwnerPattern {
        /// Mean length of an owner-active burst (simulated seconds).
        pub busy_mean: f64,
        /// Mean length of an idle gap between bursts.
        pub idle_mean: f64,
    }

    impl Default for OwnerPattern {
        fn default() -> Self {
            // Bursts of ~20 min activity separated by ~40 min of idleness:
            // machines are idle about two-thirds of the time, the regime
            // the dissertation's "run after 5pm" experiments relied on.
            OwnerPattern {
                busy_mean: 1200.0,
                idle_mean: 2400.0,
            }
        }
    }

    /// Build `n` speed-1 machines with owner-busy intervals alternating
    /// per `pattern` over `[0, horizon)`, deterministically from `seed`.
    /// Interval lengths are uniform in `[0.5, 1.5] ×` their mean.
    pub fn workday_pool(
        seed: u64,
        n: usize,
        horizon: f64,
        pattern: &OwnerPattern,
    ) -> Vec<MachineSpec> {
        let mut out = Vec::with_capacity(n);
        for m in 0..n {
            let mut rng = XorShift(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (m as u64 + 1));
            // Warm up the generator (xorshift's first outputs correlate
            // with small seeds).
            for _ in 0..8 {
                rng.next();
            }
            let mut spec = MachineSpec::ideal();
            // Phase-shift the first burst so machines desynchronise.
            let mut t = rng.range(0.0, pattern.busy_mean + pattern.idle_mean);
            loop {
                let busy = rng.range(0.5, 1.5) * pattern.busy_mean;
                if t >= horizon {
                    break;
                }
                let end = (t + busy).min(horizon);
                spec = spec.busy_between(t, end);
                t = end + rng.range(0.5, 1.5) * pattern.idle_mean;
            }
            out.push(spec);
        }
        out
    }

    /// Fraction of `[0, horizon)` during which the pool's machines are
    /// idle (the harvestable cycles).
    pub fn idle_fraction(pool: &[MachineSpec], horizon: f64) -> f64 {
        let total: f64 = pool
            .iter()
            .map(|m| {
                let busy: f64 = m
                    .busy
                    .iter()
                    .map(|&(a, b)| (b.min(horizon) - a.min(horizon)).max(0.0))
                    .sum();
                (horizon - busy) / horizon
            })
            .sum();
        total / pool.len().max(1) as f64
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::{SimConfig, Simulator};

        #[test]
        fn pool_is_deterministic_and_desynchronised() {
            let p = OwnerPattern::default();
            let a = workday_pool(7, 4, 20_000.0, &p);
            let b = workday_pool(7, 4, 20_000.0, &p);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.busy, y.busy);
            }
            // Different machines, different schedules.
            assert_ne!(a[0].busy, a[1].busy);
            // Intervals are ordered and disjoint.
            for m in &a {
                for w in m.busy.windows(2) {
                    assert!(w[0].1 <= w[1].0, "{:?}", m.busy);
                }
            }
        }

        #[test]
        fn idle_fraction_matches_pattern() {
            let p = OwnerPattern::default();
            let pool = workday_pool(3, 12, 100_000.0, &p);
            let f = idle_fraction(&pool, 100_000.0);
            // busy 1200 vs idle 2400 means ~2/3 idle.
            assert!((0.55..0.8).contains(&f), "idle fraction {f}");
        }

        #[test]
        fn jobs_complete_on_owner_occupied_pools() {
            // The thesis in one assertion: a bag of work finishes on a
            // pool that owners keep interrupting, with tasks re-queued
            // (aborted) but never lost, and the makespan bounded by the
            // idle capacity.
            let p = OwnerPattern {
                busy_mean: 50.0,
                idle_mean: 100.0,
            };
            let pool = workday_pool(11, 4, 1_000_000.0, &p);
            let costs = vec![20.0; 60];
            let cfg = SimConfig {
                requeue_delay: 5.0,
                ..SimConfig::zero_overhead()
            };
            let r = Simulator::run_static(&costs, &pool, &cfg);
            assert_eq!(r.completed, 60);
            assert!(r.aborted > 0, "owner returns should interrupt work");
            // 1200s of work on ~2.6 idle-machines-equivalent.
            assert!(r.makespan < 10_000.0, "makespan {}", r.makespan);
        }
    }
}
