//! Tree edit distance and approximate containment with cuttings (§4.1.2).
//!
//! The dissimilarity measure between two ordered labeled trees is the
//! edit distance: the minimum number of unit-cost node insertions,
//! deletions, and relabelings transforming one into the other
//! (Zhang–Shasha). A motif `M` *occurs in* a tree `T` within distance `d`
//! if some subtree `U` of `T` satisfies `dist(M, U) ≤ d` **allowing zero
//! or more cuttings at nodes of `U`** — cutting at `n` removes `n` and all
//! its descendants at no cost.
//!
//! [`tree_edit_distance`] is the classic Zhang–Shasha O(|A||B|·min(depth,
//! leaves)²) dynamic program; [`cut_distance`] is the same program with a
//! free transition that removes a complete data-side subtree
//! (Zhang/Shasha/Wang approximate tree matching *with cuttings*);
//! [`contains_within`] minimises the cut distance over every subtree of
//! the data tree — which the algorithm yields for free, since the DP
//! computes the distance for *all* node pairs.

use crate::tree::OrderedTree;

struct ZsInfo {
    /// Postorder node ids.
    post: Vec<usize>,
    /// `l[i]`: postorder index of the leftmost leaf of postorder node i.
    l: Vec<usize>,
    /// Labels by postorder index.
    label: Vec<u8>,
    /// LR-keyroots (postorder indices).
    keyroots: Vec<usize>,
}

fn zs_info(t: &OrderedTree) -> ZsInfo {
    let post = t.postorder();
    let n = post.len();
    let mut post_index = vec![0usize; t.len()];
    for (i, &node) in post.iter().enumerate() {
        post_index[node] = i;
    }
    // Leftmost leaf per postorder index.
    let mut l = vec![0usize; n];
    for (i, &node) in post.iter().enumerate() {
        let mut cur = node;
        while let Some(&first) = t.children(cur).first() {
            cur = first;
        }
        l[i] = post_index[cur];
    }
    // Keyroots: for each distinct l-value, the highest postorder index.
    let mut last_for_l = std::collections::HashMap::new();
    for (i, &lv) in l.iter().enumerate().take(n) {
        last_for_l.insert(lv, i);
    }
    let mut keyroots: Vec<usize> = last_for_l.into_values().collect();
    keyroots.sort_unstable();
    let label = post.iter().map(|&node| t.label(node)).collect();
    ZsInfo {
        post,
        l,
        label,
        keyroots,
    }
}

/// Full distance matrix `td[i][j]` = edit distance between the subtree of
/// A rooted at postorder node `i` and the subtree of B rooted at `j`,
/// with optional free cutting of complete B-subtrees.
fn zs_matrix(a: &OrderedTree, b: &OrderedTree, cuts_in_b: bool) -> Vec<Vec<usize>> {
    let ia = zs_info(a);
    let ib = zs_info(b);
    let (na, nb) = (ia.post.len(), ib.post.len());
    let mut td = vec![vec![0usize; nb]; na];

    // Forest-distance scratch, indexed by (postorder+1) within the spans.
    let mut fd = vec![vec![0usize; nb + 1]; na + 1];

    for &ka in &ia.keyroots {
        for &kb in &ib.keyroots {
            let la = ia.l[ka];
            let lb = ib.l[kb];
            // fd[x][y]: distance between A-forest l(ka)..(la+x-1) and
            // B-forest l(kb)..(lb+y-1); x,y are counts.
            fd[0][0] = 0;
            for x in 1..=(ka - la + 1) {
                fd[x][0] = fd[x - 1][0] + 1; // delete A node
            }
            for y in 1..=(kb - lb + 1) {
                // Insert the B node... or cut it free: the prefix forest
                // l(kb)..j is a union of complete subtrees, so with cuts
                // enabled the empty A-forest matches any B-forest at 0.
                fd[0][y] = if cuts_in_b { 0 } else { fd[0][y - 1] + 1 };
            }
            for x in 1..=(ka - la + 1) {
                let i = la + x - 1; // A postorder index
                for y in 1..=(kb - lb + 1) {
                    let j = lb + y - 1; // B postorder index
                    let both_trees = ia.l[i] == la && ib.l[j] == lb;
                    let mut best;
                    if both_trees {
                        let sub = fd[x - 1][y - 1] + usize::from(ia.label[i] != ib.label[j]);
                        best = sub;
                        best = best.min(fd[x - 1][y] + 1); // delete A node i
                        best = best.min(fd[x][y - 1] + 1); // insert B node j
                        if cuts_in_b {
                            // Cut the whole subtree rooted at j.
                            let skip = ib.l[j] - lb; // count before subtree j
                            best = best.min(fd[x][skip]);
                        }
                        td[i][j] = best;
                    } else {
                        best = fd[x - 1][y] + 1;
                        best = best.min(fd[x][y - 1] + 1);
                        let xa = ia.l[i] - la; // forest prefix before subtree i
                        let yb = ib.l[j] - lb;
                        best = best.min(fd[xa][yb] + td[i][j]);
                        if cuts_in_b {
                            best = best.min(fd[x][yb]);
                        }
                    }
                    fd[x][y] = best;
                }
            }
        }
    }
    td
}

/// Zhang–Shasha ordered tree edit distance (unit costs).
pub fn tree_edit_distance(a: &OrderedTree, b: &OrderedTree) -> usize {
    let td = zs_matrix(a, b, false);
    td[a.len() - 1][b.len() - 1]
}

/// Edit distance between `motif` and `data` allowing free cuttings of
/// complete subtrees of `data`.
pub fn cut_distance(motif: &OrderedTree, data: &OrderedTree) -> usize {
    let td = zs_matrix(motif, data, true);
    td[motif.len() - 1][data.len() - 1]
}

/// Minimum over all subtrees `U` of `data` of the cut distance between
/// `motif` and `U` — "how far is the motif from occurring in the tree".
pub fn best_subtree_distance(motif: &OrderedTree, data: &OrderedTree) -> usize {
    let td = zs_matrix(motif, data, true);
    let root = motif.len() - 1;
    (0..data.len()).map(|j| td[root][j]).min().unwrap()
}

/// Does `motif` occur in `data` within distance `d` (with cuttings)?
pub fn contains_within(motif: &OrderedTree, data: &OrderedTree, d: usize) -> bool {
    best_subtree_distance(motif, data) <= d
}

/// Occurrence number of `motif` over a set of trees (§4.1.2):
/// `occurrence_no^d_S(M)` = number of trees containing `M` within `d`.
pub fn occurrence_number(motif: &OrderedTree, set: &[OrderedTree], d: usize) -> usize {
    set.iter().filter(|t| contains_within(motif, t, d)).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> OrderedTree {
        OrderedTree::parse(s)
    }

    // Brute-force ordered-forest edit distance for validation (small
    // trees only): classic recursion over forests.
    fn brute_forest(a: &OrderedTree, af: &[usize], b: &OrderedTree, bf: &[usize]) -> usize {
        fn size(t: &OrderedTree, f: &[usize]) -> usize {
            f.iter().map(|&n| t.subtree(n).len()).sum()
        }
        match (af.split_last(), bf.split_last()) {
            (None, None) => 0,
            (Some(_), None) => size(a, af),
            (None, Some(_)) => size(b, bf),
            (Some((&ra, af_rest)), Some((&rb, bf_rest))) => {
                // Delete root of last A tree.
                let mut a_minus: Vec<usize> = af_rest.to_vec();
                a_minus.extend(a.children(ra));
                let d1 = 1 + brute_forest(a, &a_minus, b, bf);
                // Insert root of last B tree.
                let mut b_minus: Vec<usize> = bf_rest.to_vec();
                b_minus.extend(b.children(rb));
                let d2 = 1 + brute_forest(a, af, b, &b_minus);
                // Match last roots.
                let d3 = brute_forest(a, a.children(ra), b, b.children(rb))
                    + brute_forest(a, af_rest, b, bf_rest)
                    + usize::from(a.label(ra) != b.label(rb));
                d1.min(d2).min(d3)
            }
        }
    }

    fn brute_dist(a: &OrderedTree, b: &OrderedTree) -> usize {
        brute_forest(a, &[0], b, &[0])
    }

    #[test]
    fn identical_trees_distance_zero() {
        let x = t("A(B(C,D),E)");
        assert_eq!(tree_edit_distance(&x, &x), 0);
    }

    #[test]
    fn single_relabel() {
        assert_eq!(tree_edit_distance(&t("A(B,C)"), &t("A(B,D)")), 1);
    }

    #[test]
    fn insert_delete() {
        assert_eq!(tree_edit_distance(&t("A(B)"), &t("A(B,C)")), 1);
        assert_eq!(tree_edit_distance(&t("A(B(C))"), &t("A(C)")), 1);
        assert_eq!(tree_edit_distance(&t("A"), &t("A(B(C,D))")), 3);
    }

    #[test]
    fn matches_brute_force_on_enumerated_trees() {
        // All tree shapes with <= 4 nodes over a 2-letter alphabet would
        // be large; sample a representative set instead.
        let shapes = [
            "A",
            "B",
            "A(B)",
            "A(B,C)",
            "B(A(C))",
            "A(B(C),D)",
            "C(A,B,A)",
            "A(A(A))",
            "B(B,B)",
            "A(C(B),B(C))",
        ];
        for x in &shapes {
            for y in &shapes {
                let (tx, ty) = (t(x), t(y));
                assert_eq!(
                    tree_edit_distance(&tx, &ty),
                    brute_dist(&tx, &ty),
                    "{x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn distance_is_a_metric_on_samples() {
        let shapes = ["A", "A(B)", "A(B,C)", "B(A(C))", "A(B(C),D)"];
        for x in &shapes {
            for y in &shapes {
                let dxy = tree_edit_distance(&t(x), &t(y));
                let dyx = tree_edit_distance(&t(y), &t(x));
                assert_eq!(dxy, dyx, "symmetry {x},{y}");
                for z in &shapes {
                    let dxz = tree_edit_distance(&t(x), &t(z));
                    let dzy = tree_edit_distance(&t(z), &t(y));
                    assert!(dxy <= dxz + dzy, "triangle {x},{y} via {z}");
                }
            }
        }
    }

    #[test]
    fn exact_containment_with_cuts() {
        // Motif B(C) occurs exactly in A(B(C,D),E): take subtree B(C,D)
        // and cut D.
        assert!(contains_within(&t("B(C)"), &t("A(B(C,D),E)"), 0));
        // Motif B(D) likewise (cut C).
        assert!(contains_within(&t("B(D)"), &t("A(B(C,D),E)"), 0));
        // Motif B(E) does not: E is not below B.
        assert!(!contains_within(&t("B(E)"), &t("A(B(C,D),E)"), 0));
        assert!(contains_within(&t("B(E)"), &t("A(B(C,D),E)"), 1));
    }

    #[test]
    fn whole_tree_is_a_subtree() {
        let x = t("A(B,C)");
        assert!(contains_within(&x, &x, 0));
        assert_eq!(best_subtree_distance(&x, &x), 0);
    }

    #[test]
    fn cut_distance_never_exceeds_plain_distance() {
        let shapes = ["A", "A(B)", "A(B,C)", "B(A(C))", "A(B(C),D)", "C(A,B,A)"];
        for x in &shapes {
            for y in &shapes {
                assert!(
                    cut_distance(&t(x), &t(y)) <= tree_edit_distance(&t(x), &t(y)),
                    "{x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn cuts_remove_whole_subtrees_only() {
        // Data A(B(C)): motif A(C) needs distance 1 even with cuts —
        // cutting B would also remove C (its descendant), so B must be
        // *deleted* (cost 1) to connect C to A.
        assert_eq!(best_subtree_distance(&t("A(C)"), &t("A(B(C))")), 1);
        // Whereas motif A(B) is exact: cut C (a complete leaf subtree).
        assert_eq!(best_subtree_distance(&t("A(B)"), &t("A(B(C))")), 0);
    }

    #[test]
    fn occurrence_number_over_a_set() {
        let set = vec![t("A(B(C,D),E)"), t("X(B(C))"), t("B(C,F)"), t("Q")];
        assert_eq!(occurrence_number(&t("B(C)"), &set, 0), 3);
        // Matching B(C) against the single node Q takes two edits
        // (relabel Q, delete C), so distance 1 adds nothing...
        assert_eq!(occurrence_number(&t("B(C)"), &set, 1), 3);
        // ...and distance 2 reaches all four trees.
        assert_eq!(occurrence_number(&t("B(C)"), &set, 2), 4);
    }

    #[test]
    fn anti_monotone_under_leaf_removal() {
        // Removing a leaf from the motif can only bring it closer to any
        // data tree (the pruning property the miner relies on).
        let data = [
            t("N(M(R,H),I(B))"),
            t("M(R(H),I)"),
            t("R(H,B,M)"),
            t("N(I(B,R))"),
        ];
        let big = t("M(R,H,I)");
        let smalls = [t("M(R,H)"), t("M(R,I)"), t("M(H,I)")];
        for d in 0..3 {
            let occ_big = occurrence_number(&big, &data, d);
            for s in &smalls {
                assert!(
                    occurrence_number(s, &data, d) >= occ_big,
                    "motif {s} at distance {d}"
                );
            }
        }
    }
}
