//! Ordered labeled trees (§4.1.2).
//!
//! RNA secondary structures are represented as ordered trees whose nodes
//! are labeled with structural elements: `H` hairpin, `I` internal loop,
//! `B` bulge, `M` multi-branch loop, `R` helical stem, `N` connector
//! (Shapiro–Zhang representation, Fig. 4.2). The ordering follows the 5'
//! to 3' direction of the molecule.

use std::fmt;

/// The RNA structural-element alphabet.
pub const RNA_LABELS: &[u8; 6] = b"HIBMRN";

/// An ordered tree with byte labels, stored as an arena; node 0 is the
/// root, children in left-to-right order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OrderedTree {
    labels: Vec<u8>,
    children: Vec<Vec<usize>>,
}

impl OrderedTree {
    /// Single-node tree.
    pub fn leaf(label: u8) -> Self {
        OrderedTree {
            labels: vec![label],
            children: vec![Vec::new()],
        }
    }

    /// A root with the given subtrees, in order.
    pub fn node(label: u8, subtrees: Vec<OrderedTree>) -> Self {
        let mut t = OrderedTree::leaf(label);
        for sub in subtrees {
            t.graft(0, &sub);
        }
        t
    }

    /// Attach a copy of `sub` as the new rightmost child of `parent`.
    pub fn graft(&mut self, parent: usize, sub: &OrderedTree) -> usize {
        assert!(parent < self.len(), "graft parent out of range");
        let offset = self.len();
        self.labels.extend_from_slice(&sub.labels);
        for ch in &sub.children {
            self.children.push(ch.iter().map(|&c| c + offset).collect());
        }
        self.children[parent].push(offset);
        offset
    }

    /// Parse the compact notation `A(B(C,D),E)`: a label optionally
    /// followed by a parenthesised, comma-separated child list.
    pub fn parse(s: &str) -> OrderedTree {
        fn parse_node(bytes: &[u8], pos: &mut usize) -> OrderedTree {
            let label = bytes[*pos];
            *pos += 1;
            let mut t = OrderedTree::leaf(label);
            if *pos < bytes.len() && bytes[*pos] == b'(' {
                *pos += 1; // consume '('
                loop {
                    let child = parse_node(bytes, pos);
                    t.graft(0, &child);
                    match bytes[*pos] {
                        b',' => *pos += 1,
                        b')' => {
                            *pos += 1;
                            break;
                        }
                        c => panic!("unexpected byte {:?} at {}", c as char, pos),
                    }
                }
            }
            t
        }
        let cleaned: Vec<u8> = s.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
        let mut pos = 0;
        let t = parse_node(&cleaned, &mut pos);
        assert_eq!(pos, cleaned.len(), "trailing input after tree");
        t
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Is the tree empty? (Never: there is always a root.)
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Node label.
    pub fn label(&self, node: usize) -> u8 {
        self.labels[node]
    }

    /// Node children, left to right.
    pub fn children(&self, node: usize) -> &[usize] {
        &self.children[node]
    }

    /// Postorder listing of node ids (left to right, root last).
    pub fn postorder(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.len());
        // Iterative postorder: (node, child cursor).
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        while let Some(&mut (node, ref mut cursor)) = stack.last_mut() {
            if *cursor < self.children[node].len() {
                let next = self.children[node][*cursor];
                *cursor += 1;
                stack.push((next, 0));
            } else {
                order.push(node);
                stack.pop();
            }
        }
        order
    }

    /// All node ids (each is the root of a distinct subtree).
    pub fn nodes(&self) -> impl Iterator<Item = usize> {
        0..self.len()
    }

    /// The subtree rooted at `node`, as a fresh tree.
    pub fn subtree(&self, node: usize) -> OrderedTree {
        let mut labels = Vec::new();
        let mut children = Vec::new();
        let mut map = std::collections::HashMap::new();
        // Preorder copy preserving child order.
        let mut stack = vec![node];
        let mut order = Vec::new();
        while let Some(n) = stack.pop() {
            order.push(n);
            for &c in self.children[n].iter().rev() {
                stack.push(c);
            }
        }
        for (new_id, &old) in order.iter().enumerate() {
            map.insert(old, new_id);
            labels.push(self.labels[old]);
            children.push(Vec::new());
        }
        for &old in &order {
            let new = map[&old];
            for &c in &self.children[old] {
                let cn = map[&c];
                children[new].push(cn);
            }
        }
        OrderedTree { labels, children }
    }

    /// Preorder `(depth, label)` encoding — the canonical pattern form
    /// used by the mining problem (valid sequences start at depth 0 and
    /// never jump by more than +1).
    pub fn encode(&self) -> Vec<(u8, u8)> {
        let mut out = Vec::with_capacity(self.len());
        let mut stack: Vec<(usize, u8)> = vec![(0, 0)];
        while let Some((node, depth)) = stack.pop() {
            out.push((depth, self.labels[node]));
            for &c in self.children[node].iter().rev() {
                stack.push((c, depth + 1));
            }
        }
        out
    }

    /// Rebuild a tree from its preorder `(depth, label)` encoding.
    pub fn decode(code: &[(u8, u8)]) -> OrderedTree {
        assert!(!code.is_empty(), "empty encoding");
        assert_eq!(code[0].0, 0, "first node must be the root (depth 0)");
        let mut t = OrderedTree::leaf(code[0].1);
        // Path of arena ids from root to current rightmost node, by depth.
        let mut path: Vec<usize> = vec![0];
        for &(depth, label) in &code[1..] {
            let d = depth as usize;
            assert!(d >= 1 && d <= path.len(), "invalid preorder depth jump");
            let parent = path[d - 1];
            let id = t.len();
            t.labels.push(label);
            t.children.push(Vec::new());
            t.children[parent].push(id);
            path.truncate(d);
            path.push(id);
        }
        t
    }
}

impl fmt::Display for OrderedTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(t: &OrderedTree, node: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", t.labels[node] as char)?;
            if !t.children[node].is_empty() {
                write!(f, "(")?;
                for (i, &c) in t.children[node].iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    rec(t, c, f)?;
                }
                write!(f, ")")?;
            }
            Ok(())
        }
        rec(self, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_roundtrip() {
        for s in ["A", "A(B)", "A(B,C)", "A(B(C,D),E(F))", "N(M(R,H),I(B))"] {
            let t = OrderedTree::parse(s);
            assert_eq!(format!("{t}"), s);
        }
    }

    #[test]
    fn postorder_visits_children_before_parent() {
        let t = OrderedTree::parse("A(B(C,D),E)");
        let order = t.postorder();
        let labels: Vec<char> = order.iter().map(|&n| t.label(n) as char).collect();
        assert_eq!(labels, vec!['C', 'D', 'B', 'E', 'A']);
    }

    #[test]
    fn subtree_extraction() {
        let t = OrderedTree::parse("A(B(C,D),E)");
        // Node ids are preorder of construction: A=0, B=1, C=2, D=3, E=4.
        let sub = t.subtree(1);
        assert_eq!(format!("{sub}"), "B(C,D)");
        assert_eq!(t.subtree(4).len(), 1);
    }

    #[test]
    fn encode_decode_roundtrip() {
        for s in ["A", "A(B,C)", "A(B(C(D)),E(F,G))"] {
            let t = OrderedTree::parse(s);
            let code = t.encode();
            let back = OrderedTree::decode(&code);
            assert_eq!(format!("{back}"), s);
        }
    }

    #[test]
    fn encode_is_preorder_with_depths() {
        let t = OrderedTree::parse("A(B(C),D)");
        assert_eq!(t.encode(), vec![(0, b'A'), (1, b'B'), (2, b'C'), (1, b'D')]);
    }

    #[test]
    #[should_panic(expected = "invalid preorder depth jump")]
    fn decode_rejects_depth_jumps() {
        OrderedTree::decode(&[(0, b'A'), (2, b'B')]);
    }
}
