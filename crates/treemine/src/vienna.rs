//! Vienna dot-bracket notation → Shapiro tree conversion.
//!
//! Real RNA secondary structures arrive as dot-bracket strings (each `(`
//! paired with its matching `)`, `.` unpaired). Fig. 4.2 of the
//! dissertation shows the corresponding coarse-grained Shapiro tree: runs
//! of stacked pairs collapse into stem nodes `R`; the loop closing a stem
//! is a hairpin `H` (no inner helices), a bulge `B` (one inner helix,
//! unpaired bases on exactly one side), an internal loop `I` (one inner
//! helix, unpaired bases on both sides), or a multi-branch loop `M` (two
//! or more inner helices); the exterior is the connector `N`.
//!
//! This module implements that conversion, giving `treemine` the
//! interface a user with real structures (e.g. from RNAfold) needs.

use crate::tree::OrderedTree;

/// Dot-bracket parsing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViennaError {
    /// A `)` with no matching `(`, at this byte offset.
    UnmatchedClose(usize),
    /// `(`s left open at the end of the string (count).
    UnmatchedOpen(usize),
    /// A character other than `(`, `)`, `.` at this byte offset.
    BadChar(usize),
}

impl std::fmt::Display for ViennaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViennaError::UnmatchedClose(i) => write!(f, "unmatched ')' at {i}"),
            ViennaError::UnmatchedOpen(n) => write!(f, "{n} unmatched '('"),
            ViennaError::BadChar(i) => write!(f, "unexpected character at {i}"),
        }
    }
}

impl std::error::Error for ViennaError {}

/// Compute the pair table: `pair[i] = Some(j)` iff positions `i < j` are
/// paired.
fn pair_table(db: &str) -> Result<Vec<Option<usize>>, ViennaError> {
    let bytes = db.as_bytes();
    let mut pair = vec![None; bytes.len()];
    let mut stack = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'(' => stack.push(i),
            b')' => {
                let j = stack.pop().ok_or(ViennaError::UnmatchedClose(i))?;
                pair[j] = Some(i);
                pair[i] = Some(j);
            }
            b'.' => {}
            _ => return Err(ViennaError::BadChar(i)),
        }
    }
    if !stack.is_empty() {
        return Err(ViennaError::UnmatchedOpen(stack.len()));
    }
    Ok(pair)
}

/// Convert a dot-bracket string into its Shapiro tree (`N`-rooted; stems
/// `R`, loops `H`/`B`/`I`/`M`).
pub fn parse_dot_bracket(db: &str) -> Result<OrderedTree, ViennaError> {
    let pair = pair_table(db)?;
    let mut tree = OrderedTree::leaf(b'N');
    let helices = top_level_helices(&pair, 0, pair.len());
    for (i, j) in helices {
        build_helix(&pair, i, j, &mut tree, 0);
    }
    Ok(tree)
}

/// Opening positions (with their partners) of the outermost helices
/// within `[from, to)`.
fn top_level_helices(pair: &[Option<usize>], from: usize, to: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = from;
    while i < to {
        match pair[i] {
            Some(j) if j > i => {
                out.push((i, j));
                i = j + 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Build the stem rooted at the pair `(i, j)` under `parent`, recursing
/// into the loop that closes it.
fn build_helix(
    pair: &[Option<usize>],
    mut i: usize,
    mut j: usize,
    tree: &mut OrderedTree,
    parent: usize,
) {
    // Collapse stacked pairs into one stem node.
    let stem = tree.graft(parent, &OrderedTree::leaf(b'R'));
    while i + 1 < j && pair[i + 1] == Some(j - 1) {
        i += 1;
        j -= 1;
    }
    // Interior of the closing pair.
    let inner = top_level_helices(pair, i + 1, j);
    let unpaired_left = inner.first().map_or(j - i - 1, |&(a, _)| a - (i + 1));
    let unpaired_right = inner.last().map_or(0, |&(_, b)| j - 1 - b);
    let label = match inner.len() {
        0 => b'H',
        1 if (unpaired_left > 0) != (unpaired_right > 0) => b'B',
        1 => b'I',
        _ => b'M',
    };
    let loop_node = tree.graft(stem, &OrderedTree::leaf(label));
    for (a, b) in inner {
        build_helix(pair, a, b, tree, loop_node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(db: &str) -> String {
        parse_dot_bracket(db).unwrap().to_string()
    }

    #[test]
    fn hairpin() {
        assert_eq!(t("((((...))))"), "N(R(H))");
        assert_eq!(t("(...)"), "N(R(H))");
    }

    #[test]
    fn bulge_one_sided() {
        // Unpaired bases on the left side only between two stems.
        assert_eq!(t("((..((...))))"), "N(R(B(R(H))))");
        assert_eq!(t("((((...))..))"), "N(R(B(R(H))))");
    }

    #[test]
    fn internal_loop_two_sided() {
        assert_eq!(t("((..((...))..))"), "N(R(I(R(H))))");
    }

    #[test]
    fn stacked_inner_helix_without_gap_is_internal_zero_loop() {
        // Fully stacked pairs collapse into ONE stem node.
        assert_eq!(t("(((...)))"), "N(R(H))");
    }

    #[test]
    fn multibranch() {
        assert_eq!(t("(((...)(...)))"), "N(R(M(R(H),R(H))))");
        assert_eq!(t("((..(...)..(...).(...)..))"), "N(R(M(R(H),R(H),R(H))))");
    }

    #[test]
    fn exterior_connects_multiple_helices() {
        assert_eq!(t("(...)..(...)"), "N(R(H),R(H))");
        assert_eq!(t("..."), "N");
        assert_eq!(t(""), "N");
    }

    #[test]
    fn errors() {
        assert_eq!(
            parse_dot_bracket("(.))"),
            Err(ViennaError::UnmatchedClose(3))
        );
        assert_eq!(parse_dot_bracket("(("), Err(ViennaError::UnmatchedOpen(2)));
        assert_eq!(parse_dot_bracket("(x)"), Err(ViennaError::BadChar(1)));
    }

    #[test]
    fn parsed_structures_feed_the_miner() {
        use crate::discover::{discover_tree_motifs, TreeDiscoveryParams};
        // Three structures sharing a stem-hairpin under a multiloop.
        let dbs = ["((((...)(...))))", "(((...)(...)..))", "((..(...)(...)))"];
        let trees: Vec<OrderedTree> = dbs.iter().map(|d| parse_dot_bracket(d).unwrap()).collect();
        let found = discover_tree_motifs(
            trees,
            TreeDiscoveryParams {
                min_size: 3,
                max_size: 4,
                min_occurrence: 3,
                max_distance: 0,
            },
        );
        assert!(
            found.iter().any(|m| m.motif.to_string() == "M(R(H),R)"
                || m.motif.to_string() == "M(R,R(H))"
                || m.motif.to_string() == "M(R(H),R(H))"),
            "{:?}",
            found
                .iter()
                .map(|m| m.motif.to_string())
                .collect::<Vec<_>>()
        );
    }
}
