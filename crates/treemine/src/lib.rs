//! # `treemine` — motif discovery in RNA secondary structure trees
//!
//! The second biological application of the E-dag framework (§4.1.2 of
//! *Free Parallel Data Mining*): finding approximately common motifs in
//! multiple RNA secondary structures, represented as ordered labeled trees
//! in the Shapiro–Zhang scheme (hairpins, loops, bulges, stems).
//!
//! * [`tree`] — ordered labeled trees with a compact parse/display
//!   notation and a canonical preorder encoding;
//! * [`dist`] — Zhang–Shasha tree edit distance, plus the *cut* variant
//!   (free removal of complete data subtrees) and approximate subtree
//!   containment that defines motif occurrence;
//! * [`discover`] — rightmost-extension motif enumeration as a
//!   [`fpdm_core::MiningProblem`], runnable sequentially or on the PLinda
//!   runtime.
//!
//! ```
//! use treemine::{discover_tree_motifs, OrderedTree, TreeDiscoveryParams};
//!
//! let trees = vec![
//!     OrderedTree::parse("N(M(R,H),I)"),
//!     OrderedTree::parse("M(R,H)"),
//!     OrderedTree::parse("I(M(R,H),B)"),
//! ];
//! let found = discover_tree_motifs(trees, TreeDiscoveryParams {
//!     min_size: 3, max_size: 3, min_occurrence: 3, max_distance: 0,
//! });
//! assert!(found.iter().any(|m| m.motif.to_string() == "M(R,H)"));
//! ```

#![warn(missing_docs)]

pub mod discover;
pub mod dist;
pub mod tree;
pub mod vienna;

pub use discover::{
    discover_tree_motifs, discover_tree_motifs_farm, discover_tree_motifs_parallel,
    ActiveTreeMotif, TreeCode, TreeDiscoveryParams, TreeMiningProblem,
};
pub use dist::{
    best_subtree_distance, contains_within, cut_distance, occurrence_number, tree_edit_distance,
};
pub use tree::{OrderedTree, RNA_LABELS};
pub use vienna::{parse_dot_bracket, ViennaError};
