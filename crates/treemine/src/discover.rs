//! Discovery of motifs in sets of trees (§4.1.2, §4.2).
//!
//! Given a set `S` of ordered labeled trees and parameters `(Dist, Occur,
//! Size, MaxSize)`, find all motifs `M` — connected subgraphs, i.e.
//! subtrees with cuttings — such that `occurrence_no^Dist_S(M) ≥ Occur`
//! and `Size ≤ |M| ≤ MaxSize`.
//!
//! The pattern lattice is the set of ordered trees over the data's label
//! alphabet. Unique generation uses **rightmost extension**: every tree of
//! size `k` is produced exactly once from the size-`k-1` tree obtained by
//! removing its rightmost (last-in-preorder) node. Children append one
//! node, with any label, at any depth along the rightmost path. Immediate
//! subpatterns are the trees obtained by deleting any single leaf — each
//! of which has occurrence ≥ the motif's occurrence, which is the
//! anti-monotonicity that powers E-dag/E-tree pruning.

use crate::dist::occurrence_number;
use crate::tree::OrderedTree;
use fpdm_core::{
    parallel_ett, parallel_wave, sequential_ett, MiningOutcome, MiningProblem, ParallelConfig,
    PatternCodec,
};
use std::sync::Arc;

/// Preorder `(depth, label)` encoding of a motif tree — the pattern type.
pub type TreeCode = Vec<(u8, u8)>;

/// Parameters of a tree-motif discovery run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeDiscoveryParams {
    /// Minimum motif size `Size` (nodes) for the report.
    pub min_size: usize,
    /// Maximum motif size (bounds the traversal).
    pub max_size: usize,
    /// Minimum occurrence number `Occur`.
    pub min_occurrence: usize,
    /// Allowed edit distance `Dist` per containment test.
    pub max_distance: usize,
}

/// A discovered active tree motif.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveTreeMotif {
    /// The motif tree.
    pub motif: OrderedTree,
    /// Its occurrence number.
    pub occurrence: usize,
}

/// Tree-motif discovery as a pattern-lattice mining problem.
pub struct TreeMiningProblem {
    trees: Vec<OrderedTree>,
    labels: Vec<u8>,
    params: TreeDiscoveryParams,
}

impl TreeMiningProblem {
    /// Build the problem; the extension alphabet is the set of labels
    /// occurring in the data.
    pub fn new(trees: Vec<OrderedTree>, params: TreeDiscoveryParams) -> Self {
        let mut labels: Vec<u8> = trees
            .iter()
            .flat_map(|t| t.nodes().map(|n| t.label(n)).collect::<Vec<_>>())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        labels.sort_unstable();
        TreeMiningProblem {
            trees,
            labels,
            params,
        }
    }

    /// The tree database.
    pub fn trees(&self) -> &[OrderedTree] {
        &self.trees
    }

    /// Final report: good patterns meeting the minimum size.
    pub fn report(&self, outcome: &MiningOutcome<TreeCode>) -> Vec<ActiveTreeMotif> {
        let mut out: Vec<ActiveTreeMotif> = outcome
            .good
            .iter()
            .filter(|(code, _)| code.len() >= self.params.min_size)
            .map(|(code, occ)| ActiveTreeMotif {
                motif: OrderedTree::decode(code),
                occurrence: *occ as usize,
            })
            .collect();
        out.sort_by_key(|m| m.motif.encode());
        out
    }
}

impl MiningProblem for TreeMiningProblem {
    type Pattern = TreeCode;

    fn root(&self) -> TreeCode {
        Vec::new()
    }

    fn pattern_len(&self, p: &TreeCode) -> usize {
        p.len()
    }

    fn children(&self, p: &TreeCode) -> Vec<TreeCode> {
        if p.len() >= self.params.max_size {
            return Vec::new();
        }
        let mut out = Vec::new();
        if p.is_empty() {
            // Size-1 motifs: one root per label.
            for &l in &self.labels {
                out.push(vec![(0, l)]);
            }
            return out;
        }
        // Rightmost extension: append a node at depth 1..=last_depth+1.
        let last_depth = p.last().unwrap().0;
        for d in 1..=last_depth + 1 {
            for &l in &self.labels {
                let mut q = p.clone();
                q.push((d, l));
                out.push(q);
            }
        }
        out
    }

    fn immediate_subpatterns(&self, p: &TreeCode) -> Vec<TreeCode> {
        // Delete each leaf: node i is a leaf iff the next entry's depth is
        // not deeper (or i is last).
        let mut out = Vec::new();
        for i in 0..p.len() {
            let is_leaf = i + 1 >= p.len() || p[i + 1].0 <= p[i].0;
            if is_leaf && p.len() > 1 && i > 0 {
                let mut q = p.clone();
                q.remove(i);
                out.push(q);
            }
        }
        if p.len() == 1 {
            out.push(Vec::new()); // the zero-size root pattern
        }
        // The root node of a multi-node motif cannot be deleted (the
        // result would be a forest), and a single-node motif's only
        // subpattern is the empty pattern.
        out.sort();
        out.dedup();
        out
    }

    fn goodness(&self, p: &TreeCode) -> f64 {
        let motif = OrderedTree::decode(p);
        occurrence_number(&motif, &self.trees, self.params.max_distance) as f64
    }

    fn is_good(&self, _p: &TreeCode, goodness: f64) -> bool {
        goodness >= self.params.min_occurrence as f64
    }
}

impl PatternCodec for TreeMiningProblem {
    fn encode_pattern(&self, p: &TreeCode) -> Vec<u8> {
        p.iter().flat_map(|&(d, l)| [d, l]).collect()
    }
    fn decode_pattern(&self, bytes: &[u8]) -> TreeCode {
        bytes.chunks_exact(2).map(|c| (c[0], c[1])).collect()
    }
}

/// Sequential discovery of all active tree motifs.
pub fn discover_tree_motifs(
    trees: Vec<OrderedTree>,
    params: TreeDiscoveryParams,
) -> Vec<ActiveTreeMotif> {
    let problem = TreeMiningProblem::new(trees, params);
    let outcome = sequential_ett(&problem);
    problem.report(&outcome)
}

/// Parallel discovery on the PLinda runtime.
pub fn discover_tree_motifs_parallel(
    trees: Vec<OrderedTree>,
    params: TreeDiscoveryParams,
    config: &ParallelConfig,
) -> Vec<ActiveTreeMotif> {
    let problem = Arc::new(TreeMiningProblem::new(trees, params));
    let outcome = parallel_ett(Arc::clone(&problem), config);
    problem.report(&outcome)
}

/// Parallel discovery as the `"treemine"` farm program: candidate-
/// partitioned task waves over the rightmost-extension lattice
/// ([`fpdm_core::parallel_wave`]). Bit-identical to
/// [`discover_tree_motifs`]; runs unchanged over an in-process space or a
/// socket broker (`config.space`).
pub fn discover_tree_motifs_farm(
    trees: Vec<OrderedTree>,
    params: TreeDiscoveryParams,
    config: &ParallelConfig,
) -> Vec<ActiveTreeMotif> {
    let problem = Arc::new(TreeMiningProblem::new(trees, params));
    let outcome = parallel_wave("treemine", Arc::clone(&problem), config);
    problem.report(&outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpdm_core::sequential_edt;

    fn t(s: &str) -> OrderedTree {
        OrderedTree::parse(s)
    }

    fn params(size: usize, occ: usize, dist: usize) -> TreeDiscoveryParams {
        TreeDiscoveryParams {
            min_size: size,
            max_size: 4,
            min_occurrence: occ,
            max_distance: dist,
        }
    }

    fn sample_set() -> Vec<OrderedTree> {
        vec![
            t("N(M(R,H),I(B))"),
            t("N(M(R,H))"),
            t("M(R,H,B)"),
            t("I(M(R,H),B)"),
        ]
    }

    #[test]
    fn exact_motifs_found() {
        // M(R,H) occurs exactly in all four trees.
        let found = discover_tree_motifs(sample_set(), params(3, 4, 0));
        assert!(
            found.iter().any(|m| format!("{}", m.motif) == "M(R,H)"),
            "{:?}",
            found
                .iter()
                .map(|m| m.motif.to_string())
                .collect::<Vec<_>>()
        );
        for m in &found {
            assert!(m.occurrence >= 4);
            assert!(m.motif.len() >= 3);
        }
    }

    #[test]
    fn found_motifs_verify_against_matcher() {
        let set = sample_set();
        let p = params(2, 3, 1);
        let found = discover_tree_motifs(set.clone(), p.clone());
        assert!(!found.is_empty());
        for m in &found {
            assert_eq!(
                crate::dist::occurrence_number(&m.motif, &set, p.max_distance),
                m.occurrence
            );
            assert!(m.occurrence >= p.min_occurrence);
        }
    }

    #[test]
    fn rightmost_extension_generates_each_tree_once() {
        // Enumerate all patterns of size <= 3 over a 2-label alphabet by
        // BFS over children(); check uniqueness.
        let problem = TreeMiningProblem::new(vec![t("A(B)")], params(1, 0, 0));
        let mut seen = std::collections::HashSet::new();
        let mut frontier = vec![problem.root()];
        while let Some(p) = frontier.pop() {
            for c in problem.children(&p) {
                if c.len() <= 3 {
                    assert!(seen.insert(c.clone()), "duplicate pattern {c:?}");
                    frontier.push(c);
                }
            }
        }
        // Trees of size <=3 over 2 labels: 2 (size1) + 2*2 (size2: one
        // child) + size3: shapes chain/star = 2 shapes * 8 labelings/2...
        // count explicitly: size3 codes: (0,a)(1,b)(1,c) and
        // (0,a)(1,b)(2,c): 2 shapes * 2^3 labelings = 16.
        let size1 = seen.iter().filter(|c| c.len() == 1).count();
        let size2 = seen.iter().filter(|c| c.len() == 2).count();
        let size3 = seen.iter().filter(|c| c.len() == 3).count();
        assert_eq!(size1, 2);
        assert_eq!(size2, 4);
        assert_eq!(size3, 16);
    }

    #[test]
    fn subpatterns_are_leaf_deletions() {
        let problem = TreeMiningProblem::new(vec![t("A(B)")], params(1, 0, 0));
        // A(B,C) -> delete B or C.
        let code = vec![(0, b'A'), (1, b'B'), (1, b'C')];
        let subs = problem.immediate_subpatterns(&code);
        assert_eq!(subs.len(), 2);
        assert!(subs.contains(&vec![(0, b'A'), (1, b'B')]));
        assert!(subs.contains(&vec![(0, b'A'), (1, b'C')]));
        // Chain A(B(C)): only the deep leaf C is deletable.
        let chain = vec![(0, b'A'), (1, b'B'), (2, b'C')];
        let subs = problem.immediate_subpatterns(&chain);
        assert_eq!(subs, vec![vec![(0, b'A'), (1, b'B')]]);
    }

    #[test]
    fn edt_and_ett_agree() {
        let problem = TreeMiningProblem::new(sample_set(), params(2, 3, 0));
        let a = sequential_edt(&problem);
        let b = sequential_ett(&problem);
        assert_eq!(a.good, b.good);
        assert!(a.tested <= b.tested);
    }

    #[test]
    fn parallel_agrees_with_sequential() {
        let p = params(2, 3, 1);
        let seq = discover_tree_motifs(sample_set(), p.clone());
        let par = discover_tree_motifs_parallel(sample_set(), p, &ParallelConfig::load_balanced(3));
        assert_eq!(seq, par);
    }

    #[test]
    fn farm_discovery_matches_golden_fixture() {
        // The sample set's exact size-3 motif, mined on the farm: M(R,H)
        // occurs in all four trees; the report is pinned bit-for-bit.
        let found = discover_tree_motifs_farm(
            sample_set(),
            params(3, 4, 0),
            &ParallelConfig::load_balanced(3),
        );
        let names: Vec<String> = found.iter().map(|m| m.motif.to_string()).collect();
        assert_eq!(names, vec!["M(R,H)"]);
        assert_eq!(found[0].occurrence, 4);
    }

    #[test]
    fn farm_discovery_is_bit_identical_to_sequential() {
        let p = params(2, 3, 1);
        let sequential = discover_tree_motifs(sample_set(), p.clone());
        for cfg in [
            ParallelConfig::load_balanced(1),
            ParallelConfig::load_balanced(4),
            ParallelConfig::load_balanced(3).with_prefetch(3),
            ParallelConfig::load_balanced(2)
                .kill_after(std::time::Duration::from_millis(1), 1)
                .kill_after(std::time::Duration::from_millis(2), 0),
        ] {
            let farm = discover_tree_motifs_farm(sample_set(), p.clone(), &cfg);
            assert_eq!(sequential, farm);
        }
    }

    #[test]
    fn distance_one_motifs_are_superset_of_exact() {
        let exact = discover_tree_motifs(sample_set(), params(2, 4, 0));
        let approx = discover_tree_motifs(sample_set(), params(2, 4, 1));
        for m in &exact {
            assert!(
                approx.iter().any(|a| a.motif == m.motif),
                "exact motif {} missing from distance-1 result",
                m.motif
            );
        }
        assert!(approx.len() >= exact.len());
    }
}
