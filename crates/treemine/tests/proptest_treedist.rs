//! Property tests of the tree edit distance and containment.

use proptest::prelude::*;
use treemine::{
    best_subtree_distance, contains_within, cut_distance, tree_edit_distance, OrderedTree,
};

/// Arbitrary small ordered trees over a 3-letter alphabet, built from
/// preorder (depth, label) encodings.
fn arb_tree() -> impl Strategy<Value = OrderedTree> {
    prop::collection::vec((0u8..3, 0u8..3), 0..7).prop_map(|steps| {
        let mut code: Vec<(u8, u8)> = vec![(0, b'A')];
        let mut last_depth = 0u8;
        for (jump, label) in steps {
            // Valid preorder: depth in 1..=last_depth+1.
            let depth = 1 + jump % (last_depth + 1);
            code.push((depth, b'A' + label));
            last_depth = depth;
        }
        OrderedTree::decode(&code)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn identity(t in arb_tree()) {
        prop_assert_eq!(tree_edit_distance(&t, &t), 0);
        prop_assert_eq!(best_subtree_distance(&t, &t), 0);
        prop_assert!(contains_within(&t, &t, 0));
    }

    #[test]
    fn symmetry(a in arb_tree(), b in arb_tree()) {
        prop_assert_eq!(tree_edit_distance(&a, &b), tree_edit_distance(&b, &a));
    }

    #[test]
    fn triangle_inequality(a in arb_tree(), b in arb_tree(), c in arb_tree()) {
        let ab = tree_edit_distance(&a, &b);
        let bc = tree_edit_distance(&b, &c);
        let ac = tree_edit_distance(&a, &c);
        prop_assert!(ac <= ab + bc, "d(a,c)={ac} > d(a,b)={ab} + d(b,c)={bc}");
    }

    #[test]
    fn distance_bounded_by_sizes(a in arb_tree(), b in arb_tree()) {
        // Delete all of a, insert all of b.
        prop_assert!(tree_edit_distance(&a, &b) <= a.len() + b.len());
        // And at least the size difference.
        prop_assert!(tree_edit_distance(&a, &b) >= a.len().abs_diff(b.len()));
    }

    #[test]
    fn cuts_never_increase_distance(a in arb_tree(), b in arb_tree()) {
        prop_assert!(cut_distance(&a, &b) <= tree_edit_distance(&a, &b));
        prop_assert!(best_subtree_distance(&a, &b) <= cut_distance(&a, &b));
    }

    #[test]
    fn every_subtree_is_contained_exactly(t in arb_tree(), node_pick in any::<u32>()) {
        let node = node_pick as usize % t.len();
        let sub = t.subtree(node);
        prop_assert!(
            contains_within(&sub, &t, 0),
            "subtree {} of {} should occur exactly", sub, t
        );
    }

    #[test]
    fn encode_decode_roundtrip(t in arb_tree()) {
        let code = t.encode();
        let back = OrderedTree::decode(&code);
        prop_assert_eq!(t.to_string(), back.to_string());
    }

    #[test]
    fn containment_monotone_in_distance(a in arb_tree(), b in arb_tree()) {
        let d0 = best_subtree_distance(&a, &b);
        for d in 0..4 {
            prop_assert_eq!(contains_within(&a, &b, d), d >= d0);
        }
    }
}
