//! `loadgen` — replay owner-activity request traces against the service's
//! admission controller in virtual time.
//!
//!     loadgen [--profile smoke|full] [--requests N] [--tenants N]
//!             [--seed N] [--run-slots N]
//!             [--check BASELINE] [--out PATH] [--tolerance PCT]
//!
//! With `--check`, replays the selected profile(s) and compares against
//! the committed `BENCH_service.json`, exiting 1 on regression. With
//! `--out`, writes a fresh baseline. Otherwise prints the report(s).
//! Without `--profile`, both profiles run (that is how the committed
//! baseline carrying both key sets is produced).

use fpdm_loadgen::{bench, owner_activity_trace, run, LoadReport, SimConfig, TraceConfig};
use plinda::metrics::MetricsRegistry;
use std::collections::BTreeMap;

struct Profile {
    name: &'static str,
    requests: usize,
    tenants: usize,
    horizon_secs: f64,
}

/// The two committed profiles. Offered load sits above the default
/// capacity of 4 slots × ~4 ms mean cost (≈1000 req/s) during activity
/// bursts, so both profiles exercise queueing and shedding.
const PROFILES: [Profile; 2] = [
    Profile {
        name: "smoke",
        requests: 250_000,
        tenants: 16,
        horizon_secs: 350.0,
    },
    Profile {
        name: "full",
        requests: 1_000_000,
        tenants: 32,
        horizon_secs: 1400.0,
    },
];

fn replay(profile: &Profile, seed: u64, requests: usize, run_slots: usize) -> LoadReport {
    let trace = owner_activity_trace(&TraceConfig::new(
        seed,
        profile.tenants,
        profile.horizon_secs,
        requests,
    ));
    let mut cfg = SimConfig {
        seed,
        ..SimConfig::default()
    };
    cfg.admission.run_slots = run_slots;
    let reg = MetricsRegistry::new();
    let report = run(&trace, &cfg, &reg);
    let problems = plinda::metrics::check_snapshot(&reg.snapshot());
    assert!(
        problems.is_empty(),
        "ledger invariants violated: {problems:?}"
    );
    report
}

fn print_report(name: &str, r: &LoadReport, wall: std::time::Duration) {
    println!(
        "{name}: {} requests -> {} completed, {} shed ({} ppm)",
        r.requests, r.completed, r.shed, r.shed_ppm
    );
    println!(
        "{name}: p50 {:.3} ms, p99 {:.3} ms, max {:.3} ms",
        r.p50_ns as f64 / 1e6,
        r.p99_ns as f64 / 1e6,
        r.max_ns as f64 / 1e6
    );
    println!(
        "{name}: {:.1} req/s over {:.1} virtual s ({:.2} wall s)",
        r.throughput_rps,
        r.makespan_ns as f64 / 1e9,
        wall.as_secs_f64()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut profile_filter: Option<String> = None;
    let mut requests_override: Option<usize> = None;
    let mut seed = 1u64;
    let mut run_slots = 4usize;
    let mut baseline_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut tolerance = bench::TOLERANCE_PCT;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--profile" => profile_filter = it.next().cloned(),
            "--requests" => requests_override = it.next().and_then(|v| v.parse().ok()),
            "--seed" => seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--run-slots" => {
                run_slots = it.next().and_then(|v| v.parse().ok()).unwrap_or(run_slots)
            }
            "--check" => baseline_path = it.next().cloned(),
            "--out" => out_path = it.next().cloned(),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(bench::TOLERANCE_PCT)
            }
            other => {
                eprintln!(
                    "usage: loadgen [--profile smoke|full] [--requests N] [--seed N] \
                     [--run-slots N] [--check BASELINE] [--out PATH] [--tolerance PCT]"
                );
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let selected: Vec<&Profile> = PROFILES
        .iter()
        .filter(|p| profile_filter.as_deref().is_none_or(|f| f == p.name))
        .collect();
    if selected.is_empty() {
        eprintln!(
            "no such profile {:?}; available: smoke, full",
            profile_filter.unwrap_or_default()
        );
        std::process::exit(2);
    }

    let mut reports: Vec<(&str, LoadReport)> = Vec::new();
    for p in &selected {
        let requests = requests_override.unwrap_or(p.requests);
        let t0 = std::time::Instant::now();
        let r = replay(p, seed, requests, run_slots);
        print_report(p.name, &r, t0.elapsed());
        reports.push((p.name, r));
    }
    let flat: BTreeMap<String, f64> = bench::flatten(
        &reports
            .iter()
            .map(|(n, r)| (*n, r))
            .collect::<Vec<(&str, &LoadReport)>>(),
    );

    if let Some(path) = baseline_path {
        let baseline = match bench::read_json(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        eprintln!("service load gate: vs {path} (tolerance {tolerance}%)");
        let failures = bench::check(&baseline, &flat, tolerance);
        if failures.is_empty() {
            eprintln!("service load gate: ok");
        } else {
            eprintln!("service load gate: {} regression(s):", failures.len());
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    } else if let Some(path) = out_path {
        if let Err(e) = bench::write_json(&path, &flat) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("wrote {path}");
    }
}
