//! Virtual-time replay of a request trace through the *real* admission
//! controller.
//!
//! The simulator owns a [`fpdm_service::Admission`] instance — the same
//! type, running the same code, the live service wraps in a mutex — and
//! drives it with a discrete-event loop over a virtual nanosecond clock.
//! Executor slots are modelled as `run_slots` servers with a per-kind
//! virtual service cost plus deterministic seeded jitter; no wall-clock
//! time is read anywhere, so replaying a trace is a pure function of
//! `(trace, SimConfig)` and a million-request run completes in seconds.
//!
//! Every per-request latency (arrival → completion, queueing included) is
//! recorded exactly, both in a vector for exact percentiles and in the
//! ledger's `service.latency_ns` histogram, so the committed golden
//! snapshot covers the full `service.*` namespace the live service emits.

use crate::trace::{Arrival, KINDS};
use fpdm_service::{Admission, AdmissionConfig, Verdict};
use plinda::metrics::MetricsRegistry;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Admission policy (the knobs the live service takes).
    pub admission: AdmissionConfig,
    /// Jitter seed.
    pub seed: u64,
    /// Base virtual service cost per request kind, in nanoseconds.
    pub cost_ns: [u64; KINDS],
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            admission: AdmissionConfig {
                run_slots: 4,
                queue_cap: 64,
                shed_hi: 2048,
                shed_lo: 512,
            },
            seed: 1,
            // seqmine, treemine, episodes, classify, apriori: the relative
            // weights mirror the direct-run latencies of the demo datasets.
            cost_ns: [8_000_000, 6_000_000, 4_000_000, 2_000_000, 1_000_000],
        }
    }
}

/// What a replay produced.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Arrivals offered.
    pub requests: u64,
    /// Requests that ran to completion.
    pub completed: u64,
    /// Requests refused by admission control.
    pub shed: u64,
    /// Median completion latency (ns, queueing included).
    pub p50_ns: u64,
    /// 99th-percentile completion latency (ns).
    pub p99_ns: u64,
    /// Worst completion latency (ns).
    pub max_ns: u64,
    /// Virtual time of the last completion (ns).
    pub makespan_ns: u64,
    /// Completed requests per virtual second.
    pub throughput_rps: f64,
    /// Shed rate in parts per million of offered requests.
    pub shed_ppm: u64,
}

/// Deterministic per-request cost: the kind's base cost scaled by a
/// seeded factor in `[0.75, 1.25)`.
fn cost_ns(cfg: &SimConfig, idx: u64, kind: u8) -> u64 {
    let mut x = (cfg.seed ^ (idx + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)) | 1;
    for _ in 0..3 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
    let base = cfg.cost_ns[kind as usize % KINDS] as f64;
    (base * (0.75 + 0.5 * unit)) as u64
}

/// Replay `trace` through the admission controller, recording the
/// `service.*` ledger into `reg`.
pub fn run(trace: &[Arrival], cfg: &SimConfig, reg: &MetricsRegistry) -> LoadReport {
    let mut admission: Admission<u32> = Admission::new(cfg.admission.clone(), reg);
    let latency_hist = reg.histogram("service.latency_ns");

    // Finish events: (finish time, arrival index) in a min-heap. Finishes
    // at time T run before arrivals at time T — a freed slot is visible to
    // a request arriving in the same instant.
    let mut finishes: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut shed = 0u64;
    let mut makespan = 0u64;

    let start = |idx: u32, now: u64, finishes: &mut BinaryHeap<Reverse<(u64, u32)>>| {
        let done = now + cost_ns(cfg, idx as u64, trace[idx as usize].kind);
        finishes.push(Reverse((done, idx)));
    };

    let mut next_arrival = 0usize;
    loop {
        let arrival_at = trace.get(next_arrival).map(|a| a.at_ns);
        let finish_at = finishes.peek().map(|Reverse((t, _))| *t);
        let finish_first = match (finish_at, arrival_at) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(ft), Some(at)) => ft <= at,
        };
        if finish_first {
            let Reverse((now, idx)) = finishes.pop().unwrap();
            let lat = now - trace[idx as usize].at_ns;
            latencies.push(lat);
            latency_hist.observe(lat);
            makespan = now;
            if let Some((_tenant, next_idx)) = admission.complete() {
                start(next_idx, now, &mut finishes);
            }
        } else {
            let idx = next_arrival as u32;
            let arr = trace[next_arrival];
            next_arrival += 1;
            match admission.offer(arr.tenant, idx) {
                Verdict::Run(idx) => start(idx, arr.at_ns, &mut finishes),
                Verdict::Queued => {}
                Verdict::Shed(_) => shed += 1,
            }
        }
    }
    assert!(admission.idle(), "replay left work inside the controller");

    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let rank = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[rank]
    };
    let completed = latencies.len() as u64;
    let requests = trace.len() as u64;
    LoadReport {
        requests,
        completed,
        shed,
        p50_ns: pct(0.50),
        p99_ns: pct(0.99),
        max_ns: latencies.last().copied().unwrap_or(0),
        makespan_ns: makespan,
        throughput_rps: if makespan > 0 {
            completed as f64 / (makespan as f64 / 1e9)
        } else {
            0.0
        },
        shed_ppm: (shed * 1_000_000).checked_div(requests).unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{owner_activity_trace, TraceConfig};
    use plinda::metrics::check_snapshot;

    #[test]
    fn replay_is_deterministic_and_conserves_requests() {
        let trace = owner_activity_trace(&TraceConfig::new(9, 8, 3600.0, 20_000));
        let cfg = SimConfig::default();
        let reg = MetricsRegistry::new();
        let a = run(&trace, &cfg, &reg);
        let b = run(&trace, &cfg, &MetricsRegistry::new());
        assert_eq!(a, b);
        assert_eq!(a.completed + a.shed, a.requests);
        assert!(a.p50_ns <= a.p99_ns && a.p99_ns <= a.max_ns);
        let snap = reg.snapshot();
        let problems = check_snapshot(&snap);
        assert!(problems.is_empty(), "{problems:?}");
        assert_eq!(snap.counter("service.requests.completed"), a.completed);
        assert_eq!(snap.counter("service.requests.shed"), a.shed);
        assert_eq!(
            snap.histogram("service.latency_ns").unwrap().count,
            a.completed
        );
    }

    #[test]
    fn overload_sheds_and_underload_does_not() {
        let trace = owner_activity_trace(&TraceConfig::new(5, 8, 600.0, 500_000));
        let mut hot = SimConfig::default();
        hot.admission.run_slots = 1;
        hot.admission.shed_hi = 64;
        hot.admission.shed_lo = 16;
        let r = run(&trace, &hot, &MetricsRegistry::new());
        assert!(r.shed > 0, "overloaded replay never shed: {r:?}");

        let calm_trace = owner_activity_trace(&TraceConfig::new(5, 8, 36_000.0, 2_000));
        let calm = run(&calm_trace, &SimConfig::default(), &MetricsRegistry::new());
        assert_eq!(calm.shed, 0, "underloaded replay shed: {calm:?}");
    }
}
