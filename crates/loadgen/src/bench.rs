//! The committed service benchmark: `BENCH_service.json`.
//!
//! Same flat `"key": number` shape and check discipline as
//! `BENCH_backend.json` / `BENCH_classify.json` (see
//! `examples/backend_bench.rs`): a profile's [`LoadReport`] flattens to
//! `<profile>_*` keys, `--check` compares a fresh replay against the
//! committed file and fails CI on regression. Because the replay is
//! virtual-time deterministic, a clean tree reproduces the committed
//! numbers *exactly* — the tolerance only absorbs intentional retunes of
//! costs or policy, at which point the file is regenerated and the diff
//! reviewed like any other golden artefact.
//!
//! Gated keys: `*_p99_ns` (latency; increase is a regression) and
//! `*_throughput_rps` (decrease is a regression). The rest are context.

use crate::sim::LoadReport;
use std::collections::BTreeMap;

/// Default regression tolerance for `--check`, in percent.
pub const TOLERANCE_PCT: f64 = 25.0;

/// Flatten profile reports into benchmark keys.
pub fn flatten(profiles: &[(&str, &LoadReport)]) -> BTreeMap<String, f64> {
    let mut m = BTreeMap::new();
    for (name, r) in profiles {
        m.insert(format!("{name}_requests"), r.requests as f64);
        m.insert(format!("{name}_completed"), r.completed as f64);
        m.insert(format!("{name}_p50_ns"), r.p50_ns as f64);
        m.insert(format!("{name}_p99_ns"), r.p99_ns as f64);
        m.insert(format!("{name}_throughput_rps"), r.throughput_rps);
        m.insert(format!("{name}_shed_ppm"), r.shed_ppm as f64);
    }
    m
}

/// Write the flat benchmark JSON.
pub fn write_json(path: &str, metrics: &BTreeMap<String, f64>) -> std::io::Result<()> {
    let mut body = String::from("{\n  \"schema\": 1,\n");
    for (i, (k, v)) in metrics.iter().enumerate() {
        let sep = if i + 1 == metrics.len() { "" } else { "," };
        body.push_str(&format!("  \"{k}\": {v:.3}{sep}\n"));
    }
    body.push_str("}\n");
    std::fs::write(path, body)
}

/// Parse the flat `"key": number` pairs back out of a baseline file.
pub fn read_json(path: &str) -> std::io::Result<BTreeMap<String, f64>> {
    let text = std::fs::read_to_string(path)?;
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if let Ok(v) = value.trim().parse::<f64>() {
            out.insert(key.to_string(), v);
        }
    }
    Ok(out)
}

/// Compare fresh metrics against the committed baseline; returns the
/// gated metrics that regressed beyond `tol_pct`. Fresh keys with no
/// baseline are reported as informational and skipped, so adding a
/// profile does not fail the gate retroactively.
pub fn check(
    baseline: &BTreeMap<String, f64>,
    fresh: &BTreeMap<String, f64>,
    tol_pct: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for (key, &new) in fresh {
        // Up-is-bad for p99, down-is-bad for throughput; everything else
        // is context.
        let sign = if key.ends_with("_p99_ns") {
            1.0
        } else if key.ends_with("_throughput_rps") {
            -1.0
        } else {
            continue;
        };
        let Some(&old) = baseline.get(key) else {
            eprintln!("  [new metric {key}: {new:.1}, no baseline — skipped]");
            continue;
        };
        if old == 0.0 {
            continue;
        }
        let delta_pct = (new - old) / old * 100.0;
        let regressed = sign * delta_pct > tol_pct;
        let verdict = if regressed { "REGRESSED" } else { "ok" };
        eprintln!("  {key:<26} {old:14.1} -> {new:14.1}  {delta_pct:+7.1}%  {verdict}");
        if regressed {
            failures.push(format!("{key}: {old:.1} -> {new:.1} ({delta_pct:+.1}%)"));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(p99: u64, rps: f64) -> LoadReport {
        LoadReport {
            requests: 100,
            completed: 90,
            shed: 10,
            p50_ns: p99 / 2,
            p99_ns: p99,
            max_ns: p99 * 2,
            makespan_ns: 1_000_000_000,
            throughput_rps: rps,
            shed_ppm: 100_000,
        }
    }

    #[test]
    fn gate_catches_p99_and_throughput_regressions_only() {
        let old = report(1000, 100.0);
        let baseline = flatten(&[("smoke", &old)]);
        // Within tolerance: fine.
        let ok = report(1200, 90.0);
        assert!(check(&baseline, &flatten(&[("smoke", &ok)]), 25.0).is_empty());
        // p99 blow-up: caught.
        let slow = report(2000, 100.0);
        assert_eq!(
            check(&baseline, &flatten(&[("smoke", &slow)]), 25.0).len(),
            1
        );
        // Throughput collapse: caught.
        let weak = report(1000, 50.0);
        assert_eq!(
            check(&baseline, &flatten(&[("smoke", &weak)]), 25.0).len(),
            1
        );
        // Faster and higher-throughput: never a regression.
        let better = report(100, 500.0);
        assert!(check(&baseline, &flatten(&[("smoke", &better)]), 25.0).is_empty());
        // A profile missing from the baseline is skipped, not failed.
        assert!(check(&baseline, &flatten(&[("full", &slow)]), 25.0).is_empty());
    }

    #[test]
    fn json_round_trips() {
        let metrics = flatten(&[("smoke", &report(1234, 56.789))]);
        let dir = std::env::temp_dir().join(format!("fpdm-loadgen-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        write_json(path.to_str().unwrap(), &metrics).unwrap();
        let back = read_json(path.to_str().unwrap()).unwrap();
        assert_eq!(back.get("smoke_p99_ns"), Some(&1234.0));
        assert_eq!(back.get("schema"), Some(&1.0));
        std::fs::remove_dir_all(&dir).ok();
    }
}
