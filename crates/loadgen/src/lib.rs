//! Deterministic load generation for the mining service.
//!
//! Three layers, each a pure function of its inputs:
//!
//! * [`trace`] — owner-activity arrival traces: tenants issue requests
//!   inside `nowsim`-style owner-active bursts, exactly `n` arrivals,
//!   fully seeded.
//! * [`sim`] — a virtual-time discrete-event replay that drives the *real*
//!   [`fpdm_service::Admission`] controller (same type, same code as the
//!   live service) and records exact per-request latencies into the
//!   `fpdm.metrics.v1` ledger. A million requests replay in seconds with
//!   no wall-clock reads, so every number is reproducible bit-for-bit.
//! * [`bench`] — the committed `BENCH_service.json` artefact and its CI
//!   regression gate (p50/p99, throughput, shed rate).
//!
//! The `loadgen` binary ties them together:
//!
//! ```text
//! loadgen --profile full --seed 1          # replay 1M requests
//! loadgen --out BENCH_service.json         # regenerate the baseline
//! loadgen --profile smoke --check BENCH_service.json   # CI gate
//! ```

pub mod bench;
pub mod sim;
pub mod trace;

pub use bench::TOLERANCE_PCT;
pub use sim::{run, LoadReport, SimConfig};
pub use trace::{owner_activity_trace, Arrival, TraceConfig, KINDS, KIND_LABELS};
