//! Owner-activity request traces.
//!
//! The dissertation's free-cycle harvesting is driven by *owner activity*:
//! workstations mine while their owners are away. A mining *service* sees
//! the mirror image — clients submit jobs while their owners are **at**
//! the keyboard. This module reuses [`nowsim::traces::workday_pool`]'s
//! busy/idle owner schedules as tenant activity schedules: every request a
//! tenant issues lands inside one of its owner-active bursts, so the
//! offered load arrives in desynchronised waves rather than as a uniform
//! stream — exactly the regime that makes admission control interesting.
//!
//! Generation is fully deterministic in the seed (same xorshift family as
//! `nowsim`), produces *exactly* `requests` arrivals, and is sorted by
//! arrival time, so a trace is a pure function of its [`TraceConfig`].

use nowsim::traces::{workday_pool, OwnerPattern};

/// Request kinds a synthetic client may issue, indexed `0..KINDS`. The
/// simulator assigns each kind a virtual service cost; the labels mirror
/// the real [`fpdm_service::MiningRequest`] variants.
pub const KIND_LABELS: [&str; 5] = ["seqmine", "treemine", "episodes", "classify", "apriori"];

/// Number of request kinds.
pub const KINDS: usize = KIND_LABELS.len();

/// Trace-generation parameters.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Master seed; every derived stream re-mixes it.
    pub seed: u64,
    /// Number of tenants (one owner-activity schedule each).
    pub tenants: usize,
    /// Trace horizon in simulated seconds.
    pub horizon_secs: f64,
    /// Exact number of arrivals to generate.
    pub requests: usize,
    /// Owner busy/idle rhythm.
    pub pattern: OwnerPattern,
}

impl TraceConfig {
    /// A trace of `requests` arrivals from `tenants` tenants over
    /// `horizon_secs`, with the default owner rhythm.
    pub fn new(seed: u64, tenants: usize, horizon_secs: f64, requests: usize) -> Self {
        TraceConfig {
            seed,
            tenants,
            horizon_secs,
            requests,
            pattern: OwnerPattern::default(),
        }
    }
}

/// One client request arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Virtual arrival time in nanoseconds from trace start.
    pub at_ns: u64,
    /// Issuing tenant.
    pub tenant: i64,
    /// Request kind, an index into [`KIND_LABELS`].
    pub kind: u8,
}

/// The same xorshift as `nowsim::traces` (kept private there; the mixing
/// constants are part of this crate's determinism contract, not shared
/// state).
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        let mut x = XorShift(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
        for _ in 0..8 {
            x.next();
        }
        x
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform f64 in [0, 1).
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A tenant's activity schedule: its busy intervals clipped to the
/// horizon, plus their total length for uniform sampling.
struct Activity {
    intervals: Vec<(f64, f64)>,
    total: f64,
}

/// Generate the arrival trace: exactly `cfg.requests` arrivals, each
/// placed uniformly within the issuing tenant's owner-active time,
/// tenants taken round-robin, sorted by arrival time.
pub fn owner_activity_trace(cfg: &TraceConfig) -> Vec<Arrival> {
    assert!(cfg.tenants >= 1, "need at least one tenant");
    assert!(cfg.horizon_secs > 0.0, "horizon must be positive");
    let pool = workday_pool(cfg.seed, cfg.tenants, cfg.horizon_secs, &cfg.pattern);
    let active: Vec<(i64, Activity)> = pool
        .iter()
        .enumerate()
        .filter_map(|(t, spec)| {
            let intervals: Vec<(f64, f64)> = spec
                .busy
                .iter()
                .map(|&(a, b)| (a.min(cfg.horizon_secs), b.min(cfg.horizon_secs)))
                .filter(|&(a, b)| b > a)
                .collect();
            let total: f64 = intervals.iter().map(|&(a, b)| b - a).sum();
            (total > 0.0).then_some((t as i64, Activity { intervals, total }))
        })
        .collect();
    assert!(
        !active.is_empty(),
        "no tenant is ever owner-active within the horizon"
    );

    let mut rng = XorShift::new(cfg.seed ^ 0x5eed_ab1e);
    let mut out: Vec<Arrival> = (0..cfg.requests)
        .map(|i| {
            let (tenant, activity) = &active[i % active.len()];
            // A uniform draw over the tenant's total active time, mapped
            // through its interval list to an absolute trace time.
            let mut offset = rng.unit() * activity.total;
            let mut at = activity.intervals[activity.intervals.len() - 1].1;
            for &(a, b) in &activity.intervals {
                if offset <= b - a {
                    at = a + offset;
                    break;
                }
                offset -= b - a;
            }
            Arrival {
                at_ns: (at * 1e9) as u64,
                tenant: *tenant,
                kind: (rng.next() % KINDS as u64) as u8,
            }
        })
        .collect();
    out.sort_by_key(|a| (a.at_ns, a.tenant, a.kind));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_count_sorted_and_deterministic() {
        let cfg = TraceConfig::new(42, 8, 7200.0, 5000);
        let a = owner_activity_trace(&cfg);
        let b = owner_activity_trace(&cfg);
        assert_eq!(a.len(), 5000);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        let c = owner_activity_trace(&TraceConfig::new(43, 8, 7200.0, 5000));
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_land_inside_owner_active_bursts() {
        let cfg = TraceConfig::new(7, 4, 10_000.0, 2000);
        let pool = workday_pool(cfg.seed, cfg.tenants, cfg.horizon_secs, &cfg.pattern);
        for arr in owner_activity_trace(&cfg) {
            let t = arr.at_ns as f64 / 1e9;
            let spec = &pool[arr.tenant as usize];
            assert!(
                spec.busy
                    .iter()
                    .any(|&(a, b)| t >= a - 1e-6 && t <= b + 1e-6),
                "arrival at {t} outside tenant {} activity",
                arr.tenant
            );
        }
    }

    #[test]
    fn kinds_cover_the_mix() {
        let cfg = TraceConfig::new(1, 4, 20_000.0, 10_000);
        let mut seen = [0usize; KINDS];
        for arr in owner_activity_trace(&cfg) {
            seen[arr.kind as usize] += 1;
        }
        assert!(seen.iter().all(|&n| n > 0), "{seen:?}");
    }
}
