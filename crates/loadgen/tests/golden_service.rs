//! Golden-file test freezing the service's `fpdm.metrics.v1` snapshot —
//! the full `service.*` ledger (admission counters, queue-depth
//! watermarks, per-tenant gauges, the latency histogram) — under a fixed
//! seeded load.
//!
//! The replay is pure virtual time driving the *real*
//! [`fpdm_service::Admission`] controller, so the snapshot is
//! bit-reproducible: any drift means either the admission policy, the
//! trace generator, or the metrics exporter changed behaviour. An
//! intentional change regenerates the fixture by running the suite once
//! with `UPDATE_GOLDEN=1`.

use fpdm_loadgen::{owner_activity_trace, run, SimConfig, TraceConfig};
use plinda::metrics::check_snapshot;
use plinda::{MetricsRegistry, MetricsSnapshot};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/service_snapshot.golden.json"
);

/// A small fixed load hot enough to exercise every ledger state: runs,
/// queueing (non-zero depth watermark), and overload shedding.
fn golden_run() -> MetricsSnapshot {
    let trace = owner_activity_trace(&TraceConfig::new(42, 16, 600.0, 80_000));
    let mut cfg = SimConfig {
        seed: 42,
        ..SimConfig::default()
    };
    cfg.admission.run_slots = 1;
    cfg.admission.queue_cap = 64;
    cfg.admission.shed_hi = 96;
    cfg.admission.shed_lo = 24;
    let reg = MetricsRegistry::new();
    let report = run(&trace, &cfg, &reg);
    assert_eq!(report.completed + report.shed, report.requests as u64);
    reg.snapshot()
}

#[test]
fn service_ledger_matches_golden_fixture() {
    let got = golden_run().to_json();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(FIXTURE, &got).unwrap();
    }
    let want = std::fs::read_to_string(FIXTURE)
        .expect("golden fixture missing; regenerate with UPDATE_GOLDEN=1");
    assert_eq!(
        got, want,
        "service ledger drifted from the frozen snapshot; if the change \
         is intentional (admission policy, trace generator, or exporter), \
         regenerate the fixture with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_fixture_round_trips_through_decoder() {
    let want = std::fs::read_to_string(FIXTURE)
        .expect("golden fixture missing; regenerate with UPDATE_GOLDEN=1");
    let decoded = MetricsSnapshot::from_json(&want).expect("fixture must decode");
    assert_eq!(decoded, golden_run(), "decode(fixture) == ledger");
    assert_eq!(
        decoded.to_json(),
        want,
        "encode(decode(fixture)) == fixture"
    );
}

#[test]
fn golden_fixture_is_a_consistent_service_ledger() {
    let snap = golden_run();
    let violations = check_snapshot(&snap);
    assert!(violations.is_empty(), "{violations:?}");
    // The fixture must actually exercise the interesting states, or it
    // pins nothing: shedding happened, the queue was used, and every
    // completed request recorded a latency sample.
    assert!(
        snap.counter("service.requests.shed") > 0,
        "no shed activity"
    );
    assert!(snap.counter("service.requests.queued") > 0, "no queueing");
    let hist = snap
        .histograms
        .get("service.latency_ns")
        .expect("latency histogram");
    assert_eq!(hist.count, snap.counter("service.requests.completed"));
}

#[test]
fn golden_run_is_deterministic() {
    assert_eq!(golden_run(), golden_run(), "same seed, same ledger");
}
