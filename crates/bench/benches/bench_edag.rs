//! E-dag vs E-tree traversal cost (the pruning-vs-synchronisation
//! ablation of DESIGN.md): the EDT tests fewer patterns, the ETT visits
//! without level bookkeeping.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::{basket_db, BasketSpec};
use fpdm_core::prelude::*;

fn problem() -> ToyItemsets {
    let db = basket_db(
        &BasketSpec {
            transactions: 400,
            items: 40,
            avg_txn_len: 8,
            ..BasketSpec::default()
        },
        11,
    );
    ToyItemsets::new(db.transactions().to_vec(), 20)
}

fn bench_traversals(c: &mut Criterion) {
    let p = problem();
    let mut g = c.benchmark_group("edag");
    g.sample_size(20);
    g.bench_function("sequential_edt", |b| {
        b.iter(|| std::hint::black_box(sequential_edt(&p)))
    });
    g.bench_function("sequential_ett", |b| {
        b.iter(|| std::hint::black_box(sequential_ett(&p)))
    });
    g.finish();
}

fn bench_episode_kernel(c: &mut Criterion) {
    use datagen::event_stream;
    use episodes::EventSequence;
    let stream = EventSequence::new(event_stream(3, 3000, 5, 0.4, &[(b"xyz", 15)]));
    let mut g = c.benchmark_group("episodes");
    g.bench_function("window_count_len3_w8", |b| {
        b.iter(|| std::hint::black_box(stream.window_count(8, b"xyz")))
    });
    g.finish();
}

criterion_group!(benches, bench_traversals, bench_episode_kernel);
criterion_main!(benches);
