//! Association-mining counting structures (the DESIGN.md ablation):
//! hash-tree vs flat-map candidate counting, Apriori vs Partition vs the
//! E-dag traversal.

use assoc::{apriori_with, partition_mine, CountingMethod, ItemsetMiningProblem};
use criterion::{criterion_group, criterion_main, Criterion};
use datagen::{basket_db, BasketSpec};
use fpdm_core::sequential_edt;

fn bench_apriori(c: &mut Criterion) {
    let db = basket_db(
        &BasketSpec {
            transactions: 2000,
            items: 150,
            avg_txn_len: 10,
            ..BasketSpec::default()
        },
        3,
    );
    let min_support = db.len() / 40;

    let mut g = c.benchmark_group("apriori");
    g.sample_size(10);
    g.bench_function("hash_tree", |b| {
        b.iter(|| std::hint::black_box(apriori_with(&db, min_support, CountingMethod::HashTree)))
    });
    g.bench_function("flat_map", |b| {
        b.iter(|| std::hint::black_box(apriori_with(&db, min_support, CountingMethod::FlatMap)))
    });
    g.bench_function("partition_4", |b| {
        b.iter(|| std::hint::black_box(partition_mine(&db, min_support, 4)))
    });
    g.bench_function("edag_traversal", |b| {
        let problem = ItemsetMiningProblem::new(db.clone(), min_support);
        b.iter(|| std::hint::black_box(sequential_edt(&problem)))
    });
    g.finish();
}

criterion_group!(benches, bench_apriori);
criterion_main!(benches);
