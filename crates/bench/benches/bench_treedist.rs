//! Tree-edit-distance kernels: plain Zhang–Shasha, the cut variant, and
//! best-subtree containment on RNA-sized trees.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::rna_structures;
use treemine::{best_subtree_distance, cut_distance, tree_edit_distance, OrderedTree};

fn bench_treedist(c: &mut Criterion) {
    let trees = rna_structures(5, 8, 30, &[]);
    let motif = OrderedTree::parse("M(R(H),R(B(H)))");
    let (a, b2) = (&trees[0], &trees[1]);

    let mut g = c.benchmark_group("treedist");
    g.bench_function("zhang_shasha", |b| {
        b.iter(|| std::hint::black_box(tree_edit_distance(a, b2)))
    });
    g.bench_function("cut_distance", |b| {
        b.iter(|| std::hint::black_box(cut_distance(&motif, a)))
    });
    g.bench_function("best_subtree_distance", |b| {
        b.iter(|| std::hint::black_box(best_subtree_distance(&motif, a)))
    });
    g.bench_function("occurrence_over_8_trees", |b| {
        b.iter(|| std::hint::black_box(treemine::occurrence_number(&motif, &trees, 1)))
    });
    g.finish();
}

criterion_group!(benches, bench_treedist);
criterion_main!(benches);
