//! Split-search kernels (the optimal-split ablation of DESIGN.md): the
//! sub-K-ary DP at several K, CART's binary case, and C4.5's gain-ratio
//! scan, all on the same node data.

use classify::split::{
    best_split, boundary_collapse, c45_split, optimal_interval_split, value_baskets,
};
use classify::{Entropy, Gini};
use criterion::{criterion_group, criterion_main, Criterion};
use datagen::benchmark;

fn bench_splits(c: &mut Criterion) {
    let data = benchmark("diabetes", 7);
    let rows = data.all_rows();
    let baskets = boundary_collapse(value_baskets(&data, &rows, 0));

    let mut g = c.benchmark_group("splits");
    for k in [2usize, 4, 8] {
        g.bench_function(format!("interval_dp_k{k}"), |b| {
            b.iter(|| std::hint::black_box(optimal_interval_split(&baskets, k, &Gini)))
        });
    }
    g.bench_function("best_split_all_attrs_k4", |b| {
        b.iter(|| std::hint::black_box(best_split(&data, &rows, 4, &Gini)))
    });
    g.bench_function("best_split_all_attrs_k2_entropy", |b| {
        b.iter(|| std::hint::black_box(best_split(&data, &rows, 2, &Entropy)))
    });
    g.bench_function("c45_gain_ratio_scan", |b| {
        b.iter(|| std::hint::black_box(c45_split(&data, &rows)))
    });

    // Categorical search on the german data (13 categorical attributes).
    let german = benchmark("german", 7);
    let grows = german.all_rows();
    g.bench_function("best_split_mixed_german_k4", |b| {
        b.iter(|| std::hint::black_box(best_split(&german, &grows, 4, &Gini)))
    });
    g.finish();
}

criterion_group!(benches, bench_splits);
criterion_main!(benches);
