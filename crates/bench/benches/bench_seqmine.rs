//! Sequence-mining kernels: generalised-suffix-tree construction, exact
//! occurrence counting via the GST vs the DP matcher, and the
//! approximate-matching DP itself.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::cyclins_substitute;
use seqmine::{min_mutations, occurrence_number, Gst, Motif};

fn bench_seqmine(c: &mut Criterion) {
    let seqs = cyclins_substitute(1998);
    let mut g = c.benchmark_group("seqmine");
    g.sample_size(20);

    g.bench_function("gst_build_47x400", |b| {
        b.iter(|| std::hint::black_box(Gst::build(&seqs)))
    });

    let gst = Gst::build(&seqs);
    let pattern = b"MRAILVDWLVEV";
    g.bench_function("gst_exact_occurrence", |b| {
        b.iter(|| std::hint::black_box(gst.occurrence(pattern)))
    });

    let motif = Motif::single(pattern);
    g.bench_function("dp_occurrence_mut0", |b| {
        b.iter(|| std::hint::black_box(occurrence_number(&motif, &seqs, 0)))
    });
    g.bench_function("dp_occurrence_mut4", |b| {
        b.iter(|| std::hint::black_box(occurrence_number(&motif, &seqs, 4)))
    });
    g.bench_function("dp_single_match", |b| {
        b.iter(|| std::hint::black_box(min_mutations(&motif, &seqs[0])))
    });
    g.finish();
}

criterion_group!(benches, bench_seqmine);
criterion_main!(benches);
