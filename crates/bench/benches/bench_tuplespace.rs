//! Tuple-space micro-benchmarks: op throughput and the effect of
//! signature partitioning (DESIGN.md ablation: partition-by-signature vs
//! one flat queue — emulated by giving every tuple the same signature).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use plinda::{field, tup, Template, TupleSpace};

fn bench_out_inp(c: &mut Criterion) {
    let mut g = c.benchmark_group("tuplespace");
    g.bench_function("out_inp_cycle", |b| {
        let ts = TupleSpace::new();
        let tmpl = Template::new(vec![field::val("t"), field::int()]);
        b.iter(|| {
            ts.out(tup!["t", 1]);
            std::hint::black_box(ts.inp(&tmpl)).unwrap()
        });
    });

    // Distinct signatures: each template scans a one-tuple partition.
    g.bench_function("inp_100_distinct_signatures", |b| {
        b.iter_batched(
            || {
                let ts = TupleSpace::new();
                for i in 0..100i64 {
                    // Arity varies with i%4 -> many partitions.
                    match i % 4 {
                        0 => ts.out(tup!["a", i]),
                        1 => ts.out(tup!["a", i, i]),
                        2 => ts.out(tup!["a", i, i, i]),
                        _ => ts.out(tup![i, "a"]),
                    }
                }
                ts
            },
            |ts| {
                let tmpl = Template::new(vec![field::val("a"), field::int(), field::int()]);
                while std::hint::black_box(ts.inp(&tmpl)).is_some() {}
            },
            BatchSize::SmallInput,
        );
    });

    // Single signature: the flat-queue worst case, linear scans for a
    // selective actual field.
    g.bench_function("inp_100_single_signature_selective", |b| {
        b.iter_batched(
            || {
                let ts = TupleSpace::new();
                for i in 0..100i64 {
                    ts.out(tup!["a", i]);
                }
                ts
            },
            |ts| {
                for i in (0..100i64).rev() {
                    let tmpl = Template::new(vec![field::val("a"), field::val(i)]);
                    std::hint::black_box(ts.inp(&tmpl)).unwrap();
                }
            },
            BatchSize::SmallInput,
        );
    });

    // Trace-recorder overhead at the single-op level: the same cycle with
    // a Recorder installed (every op appends an event under the recorder
    // mutex) vs the default disabled path (one relaxed atomic load).
    g.bench_function("out_inp_cycle_recording", |b| {
        let ts = TupleSpace::new();
        ts.set_recorder(Some(plinda::Recorder::new()));
        let tmpl = Template::new(vec![field::val("t"), field::int()]);
        b.iter(|| {
            ts.out(tup!["t", 1]);
            std::hint::black_box(ts.inp(&tmpl)).unwrap()
        });
    });

    // Metrics overhead at the single-op level, both sides of the switch:
    // with a registry installed (per-partition cached handles, ~3 relaxed
    // atomic RMWs per op) and the disabled default (one relaxed atomic
    // load per op — must sit within noise of the plain out_inp_cycle).
    g.bench_function("out_inp_cycle_metrics", |b| {
        let ts = TupleSpace::new();
        ts.set_metrics(Some(plinda::MetricsRegistry::new()));
        let tmpl = Template::new(vec![field::val("t"), field::int()]);
        b.iter(|| {
            ts.out(tup!["t", 1]);
            std::hint::black_box(ts.inp(&tmpl)).unwrap()
        });
    });
    g.bench_function("out_inp_cycle_metrics_off", |b| {
        let ts = TupleSpace::new();
        ts.set_metrics(Some(plinda::MetricsRegistry::new()));
        ts.set_metrics(None); // installed then removed: the gated path
        let tmpl = Template::new(vec![field::val("t"), field::int()]);
        b.iter(|| {
            ts.out(tup!["t", 1]);
            std::hint::black_box(ts.inp(&tmpl)).unwrap()
        });
    });

    g.bench_function("checkpoint_1000_tuples", |b| {
        let ts = TupleSpace::new();
        for i in 0..1000i64 {
            ts.out(tup!["task", i, i as f64, vec![0u8; 16]]);
        }
        b.iter(|| std::hint::black_box(ts.checkpoint_bytes()));
    });
    g.finish();
}

// ---------------------------------------------------------------------
// Contended many-signature workload: the sharded space (one lock +
// condvar per signature, targeted wakeups) against a single-lock
// reference space (one Vec, one condvar, notify_all on every out — the
// pre-sharding design). Each signature gets a producer/consumer thread
// pair; under a single lock every `out` wakes every blocked consumer.
// ---------------------------------------------------------------------

/// The minimal blocking-space surface the workload needs.
trait BenchSpace: Sync {
    fn put(&self, t: plinda::Tuple);
    fn take(&self, tmpl: &Template) -> plinda::Tuple;
}

impl BenchSpace for TupleSpace {
    fn put(&self, t: plinda::Tuple) {
        self.out(t);
    }
    fn take(&self, tmpl: &Template) -> plinda::Tuple {
        self.in_blocking(tmpl.clone())
    }
}

/// Reference implementation: one flat store under one mutex, one condvar
/// woken broadcast-style on every insertion.
#[derive(Default)]
struct SingleLockSpace {
    tuples: std::sync::Mutex<Vec<plinda::Tuple>>,
    cond: std::sync::Condvar,
}

impl BenchSpace for SingleLockSpace {
    fn put(&self, t: plinda::Tuple) {
        self.tuples.lock().unwrap().push(t);
        self.cond.notify_all();
    }
    fn take(&self, tmpl: &Template) -> plinda::Tuple {
        let mut g = self.tuples.lock().unwrap();
        loop {
            if let Some(i) = g.iter().position(|t| tmpl.matches(t)) {
                return g.remove(i);
            }
            g = self.cond.wait(g).unwrap();
        }
    }
}

/// Tuples of stream `sig` get arity `sig + 2` — a distinct type
/// signature, hence a distinct partition of the sharded space.
fn stream_tuple(sig: usize, payload: i64) -> plinda::Tuple {
    let mut vs = vec![
        plinda::Value::Str(format!("s{sig}")),
        plinda::Value::Int(payload),
    ];
    vs.extend((0..sig).map(|_| plinda::Value::Int(0)));
    plinda::Tuple(vs)
}

fn stream_template(sig: usize) -> Template {
    let mut fs = vec![field::val(format!("s{sig}")), field::int()];
    fs.extend((0..sig).map(|_| field::int()));
    Template::new(fs)
}

/// One producer + one consumer thread per signature; runs until every
/// message has been withdrawn.
fn contended_workload<S: BenchSpace>(space: &S, streams: usize, msgs: i64) {
    std::thread::scope(|scope| {
        for sig in 0..streams {
            scope.spawn(move || {
                for i in 0..msgs {
                    space.put(stream_tuple(sig, i));
                }
            });
            scope.spawn(move || {
                let tmpl = stream_template(sig);
                let mut sum = 0i64;
                for _ in 0..msgs {
                    sum += space.take(&tmpl).int(1);
                }
                std::hint::black_box(sum);
            });
        }
    });
}

/// Wasted-wakeup workload: `idle_waiters` consumers park on signatures
/// that see no traffic while one busy stream pumps `msgs` tuples. Under
/// a single lock every `out` must broadcast, waking each parked waiter
/// for a futile rescan; the sharded space notifies only the busy
/// partition. A final tuple per quiet signature releases the waiters.
fn wakeup_storm<S: BenchSpace>(space: &S, idle_waiters: usize, msgs: i64) {
    std::thread::scope(|scope| {
        for sig in 1..=idle_waiters {
            scope.spawn(move || {
                let tmpl = stream_template(sig);
                std::hint::black_box(space.take(&tmpl));
            });
        }
        scope.spawn(move || {
            for i in 0..msgs {
                space.put(stream_tuple(0, i));
            }
            for sig in 1..=idle_waiters {
                space.put(stream_tuple(sig, 0));
            }
        });
        let tmpl = stream_template(0);
        let mut sum = 0i64;
        for _ in 0..msgs {
            sum += space.take(&tmpl).int(1);
        }
        std::hint::black_box(sum);
    });
}

/// Backlog drain, single-threaded and scheduler-independent: interleave
/// `streams * msgs` tuples, then withdraw stream by stream in reverse
/// insertion order. The flat store scans past every other stream's
/// backlog on each take (O(space) matching); the sharded store scans
/// only the addressed partition.
fn preloaded_drain<S: BenchSpace>(space: &S, streams: usize, msgs: i64) {
    for i in 0..msgs {
        for sig in 0..streams {
            space.put(stream_tuple(sig, i));
        }
    }
    for sig in (0..streams).rev() {
        let tmpl = stream_template(sig);
        for _ in 0..msgs {
            std::hint::black_box(space.take(&tmpl));
        }
    }
}

fn bench_contended(c: &mut Criterion) {
    const STREAMS: usize = 8;
    const MSGS: i64 = 500;
    let mut g = c.benchmark_group("tuplespace_contended");
    g.sample_size(10);
    g.bench_function("pairs_8x500_sharded", |b| {
        b.iter(|| contended_workload(&TupleSpace::new(), STREAMS, MSGS));
    });
    g.bench_function("pairs_8x500_single_lock", |b| {
        b.iter(|| contended_workload(&SingleLockSpace::default(), STREAMS, MSGS));
    });
    // Checker overhead (EXPERIMENTS.md): the same contended workload with
    // a trace Recorder installed — every visible-space event serialised
    // through the recorder mutex — against the recording-off run above.
    g.bench_function("pairs_8x500_sharded_recording", |b| {
        b.iter(|| {
            let ts = TupleSpace::new();
            let rec = plinda::Recorder::new();
            ts.set_recorder(Some(rec.clone()));
            contended_workload(&ts, STREAMS, MSGS);
            std::hint::black_box(rec.take().len())
        });
    });
    g.bench_function("wakeup_storm_7_idle_sharded", |b| {
        b.iter(|| wakeup_storm(&TupleSpace::new(), STREAMS - 1, MSGS));
    });
    g.bench_function("wakeup_storm_7_idle_single_lock", |b| {
        b.iter(|| wakeup_storm(&SingleLockSpace::default(), STREAMS - 1, MSGS));
    });
    g.bench_function("drain_8x200_sharded", |b| {
        b.iter(|| preloaded_drain(&TupleSpace::new(), STREAMS, 200));
    });
    g.bench_function("drain_8x200_single_lock", |b| {
        b.iter(|| preloaded_drain(&SingleLockSpace::default(), STREAMS, 200));
    });
    g.finish();
}

criterion_group!(benches, bench_out_inp, bench_contended);
criterion_main!(benches);
