//! Tuple-space micro-benchmarks: op throughput and the effect of
//! signature partitioning (DESIGN.md ablation: partition-by-signature vs
//! one flat queue — emulated by giving every tuple the same signature).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use plinda::{field, tup, Template, TupleSpace};

fn bench_out_inp(c: &mut Criterion) {
    let mut g = c.benchmark_group("tuplespace");
    g.bench_function("out_inp_cycle", |b| {
        let ts = TupleSpace::new();
        let tmpl = Template::new(vec![field::val("t"), field::int()]);
        b.iter(|| {
            ts.out(tup!["t", 1]);
            std::hint::black_box(ts.inp(&tmpl)).unwrap()
        });
    });

    // Distinct signatures: each template scans a one-tuple partition.
    g.bench_function("inp_100_distinct_signatures", |b| {
        b.iter_batched(
            || {
                let ts = TupleSpace::new();
                for i in 0..100i64 {
                    // Arity varies with i%4 -> many partitions.
                    match i % 4 {
                        0 => ts.out(tup!["a", i]),
                        1 => ts.out(tup!["a", i, i]),
                        2 => ts.out(tup!["a", i, i, i]),
                        _ => ts.out(tup![i, "a"]),
                    }
                }
                ts
            },
            |ts| {
                let tmpl = Template::new(vec![field::val("a"), field::int(), field::int()]);
                while std::hint::black_box(ts.inp(&tmpl)).is_some() {}
            },
            BatchSize::SmallInput,
        );
    });

    // Single signature: the flat-queue worst case, linear scans for a
    // selective actual field.
    g.bench_function("inp_100_single_signature_selective", |b| {
        b.iter_batched(
            || {
                let ts = TupleSpace::new();
                for i in 0..100i64 {
                    ts.out(tup!["a", i]);
                }
                ts
            },
            |ts| {
                for i in (0..100i64).rev() {
                    let tmpl = Template::new(vec![field::val("a"), field::val(i)]);
                    std::hint::black_box(ts.inp(&tmpl)).unwrap();
                }
            },
            BatchSize::SmallInput,
        );
    });

    g.bench_function("checkpoint_1000_tuples", |b| {
        let ts = TupleSpace::new();
        for i in 0..1000i64 {
            ts.out(tup!["task", i, i as f64, vec![0u8; 16]]);
        }
        b.iter(|| std::hint::black_box(ts.checkpoint_bytes()));
    });
    g.finish();
}

criterion_group!(benches, bench_out_inp);
criterion_main!(benches);
