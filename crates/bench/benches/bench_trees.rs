//! Whole-tree growth: NyuMiner (K = 4), CART (binary Gini), and C4.5
//! (gain ratio) on the same training data, plus cost-complexity pruning.

use classify::prune::ccp_sequence;
use classify::tree::{DecisionTree, GrowConfig, GrowRule};
use classify::Gini;
use criterion::{criterion_group, criterion_main, Criterion};
use datagen::benchmark;

fn bench_trees(c: &mut Criterion) {
    let data = benchmark("diabetes", 7);
    let rows = data.all_rows();
    let cfg = GrowConfig::default();

    let mut g = c.benchmark_group("trees");
    g.sample_size(10);
    g.bench_function("grow_nyuminer_k4", |b| {
        b.iter(|| {
            std::hint::black_box(DecisionTree::grow(
                &data,
                &rows,
                &GrowRule::NyuMiner {
                    max_branches: 4,
                    impurity: &Gini,
                },
                &cfg,
            ))
        })
    });
    g.bench_function("grow_cart", |b| {
        b.iter(|| std::hint::black_box(DecisionTree::grow(&data, &rows, &GrowRule::Cart, &cfg)))
    });
    g.bench_function("grow_c45", |b| {
        b.iter(|| std::hint::black_box(DecisionTree::grow(&data, &rows, &GrowRule::C45, &cfg)))
    });

    let full = DecisionTree::grow(&data, &rows, &GrowRule::Cart, &cfg);
    g.bench_function("ccp_sequence", |b| {
        b.iter(|| std::hint::black_box(ccp_sequence(&full)))
    });
    g.finish();
}

criterion_group!(benches, bench_trees);
criterion_main!(benches);
