//! Whole-tree growth: NyuMiner (K = 4), CART (binary Gini), and C4.5
//! (gain ratio) on the same training data, plus cost-complexity pruning,
//! plus end-to-end induction over every Table 5.1 dataset through the
//! presort-once columnar engine (`bench_classify` records the same
//! workload into `BENCH_classify.json` for the CI perf gate).

use classify::prune::ccp_sequence;
use classify::tree::{DecisionTree, GrowConfig, GrowRule};
use classify::{ColumnarIndex, Gini};
use criterion::{criterion_group, criterion_main, Criterion};
use datagen::benchmark;

fn bench_trees(c: &mut Criterion) {
    let data = benchmark("diabetes", 7);
    let rows = data.all_rows();
    let cfg = GrowConfig::default();

    let mut g = c.benchmark_group("trees");
    g.sample_size(10);
    g.bench_function("grow_nyuminer_k4", |b| {
        b.iter(|| {
            std::hint::black_box(DecisionTree::grow(
                &data,
                &rows,
                &GrowRule::NyuMiner {
                    max_branches: 4,
                    impurity: &Gini,
                },
                &cfg,
            ))
        })
    });
    g.bench_function("grow_cart", |b| {
        b.iter(|| std::hint::black_box(DecisionTree::grow(&data, &rows, &GrowRule::Cart, &cfg)))
    });
    g.bench_function("grow_c45", |b| {
        b.iter(|| std::hint::black_box(DecisionTree::grow(&data, &rows, &GrowRule::C45, &cfg)))
    });

    let full = DecisionTree::grow(&data, &rows, &GrowRule::Cart, &cfg);
    g.bench_function("ccp_sequence", |b| {
        b.iter(|| std::hint::black_box(ccp_sequence(&full)))
    });
    g.finish();
}

/// End-to-end induction per benchmark dataset: one shared columnar
/// ingest, then a full tree per learner rule over all rows.
fn bench_induction(c: &mut Criterion) {
    let cfg = GrowConfig::default();
    let mut g = c.benchmark_group("induction");
    g.sample_size(5);
    for name in [
        "diabetes",
        "german",
        "mushrooms",
        "satimage",
        "smoking",
        "vote",
        "yeast",
    ] {
        let data = benchmark(name, 7);
        let rows = data.all_rows();
        g.bench_function(format!("{name}/index_build"), |b| {
            b.iter(|| std::hint::black_box(ColumnarIndex::build(&data)))
        });
        let index = ColumnarIndex::build(&data);
        let rules: [(&str, GrowRule); 3] = [
            ("c45", GrowRule::C45),
            ("cart", GrowRule::Cart),
            (
                "nyuminer_k3",
                GrowRule::NyuMiner {
                    max_branches: 3,
                    impurity: &Gini,
                },
            ),
        ];
        for (rule_name, rule) in rules {
            g.bench_function(format!("{name}/{rule_name}"), |b| {
                b.iter(|| {
                    std::hint::black_box(DecisionTree::grow_indexed(
                        &data, &index, &rows, &rule, &cfg,
                    ))
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_trees, bench_induction);
criterion_main!(benches);
