//! Plain-text table rendering for the experiment harness.

/// Render an aligned table: a header row and data rows, columns padded to
/// the widest cell, separated by two spaces.
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        assert_eq!(r.len(), cols, "ragged table row");
        for (i, cell) in r.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for r in rows {
        out.push_str(&fmt_row(r, &widths));
        out.push('\n');
    }
    out
}

/// Format a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format seconds with two decimals.
pub fn secs(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let t = render(
            &["a", "bbb"],
            &[
                vec!["1".into(), "2".into()],
                vec!["10".into(), "20000".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bbb"));
        assert!(lines[3].ends_with("20000"));
    }

    #[test]
    fn pct_and_secs() {
        assert_eq!(pct(0.123), "12.3%");
        assert_eq!(secs(1.5), "1.50");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        render(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
