//! End-to-end tree-induction benchmark with a machine-readable baseline.
//!
//! Measures, per Table 5.1 dataset: the one-time columnar ingest
//! (`ColumnarIndex::build`) and a full tree growth per learner rule
//! (C4.5 gain ratio, CART binary Gini, NyuMiner K=3 Gini) over the
//! shared index. Two tiers:
//!
//! * **fast** — row-capped datasets, enough for a CI smoke gate;
//! * **full** — all rows, plus the wall time of the whole
//!   `experiments -- t5.3` harness (invoked as a sibling binary).
//!
//! ```text
//! bench_classify                      # measure fast+full+t5.3, write BENCH_classify.json
//! bench_classify --fast               # measure and print the fast tier only
//! bench_classify --check <baseline>   # fast tier vs baseline; exit 1 on >25% regression
//! ```
//!
//! The baseline file is a flat JSON object (`"tier.dataset.metric": ms`)
//! so the checker — and any future PR wanting to gate on induction cost —
//! can parse it with a line scanner instead of a JSON library.

use classify::tree::{DecisionTree, GrowConfig, GrowRule};
use classify::{ColumnarIndex, Dataset, Gini};
use datagen::benchmark;
use std::collections::BTreeMap;
use std::time::Instant;

const DATASETS: [&str; 7] = [
    "diabetes",
    "german",
    "mushrooms",
    "satimage",
    "smoking",
    "vote",
    "yeast",
];
const DATA_SEED: u64 = 7;
/// Row cap for the fast tier (CI smoke).
const FAST_ROWS: usize = 600;
/// Default regression tolerance for `--check`, in percent.
const TOLERANCE_PCT: f64 = 25.0;

fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup, untimed
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn rules() -> Vec<(&'static str, GrowRule<'static>)> {
    vec![
        ("c45", GrowRule::C45),
        ("cart", GrowRule::Cart),
        (
            "nyuminer",
            GrowRule::NyuMiner {
                max_branches: 3,
                impurity: &Gini,
            },
        ),
    ]
}

/// Measure one tier into `out` under `tier.` key prefixes.
fn measure_tier(tier: &str, row_cap: Option<usize>, reps: usize, out: &mut BTreeMap<String, f64>) {
    let cfg = GrowConfig::default();
    for name in DATASETS {
        let data: Dataset = benchmark(name, DATA_SEED);
        let n = row_cap.map_or(data.len(), |cap| data.len().min(cap));
        let rows: Vec<usize> = (0..n).collect();
        let build_ms = median_ms(reps, || {
            std::hint::black_box(ColumnarIndex::build(&data));
        });
        out.insert(format!("{tier}.{name}.index_build_ms"), build_ms);
        let index = ColumnarIndex::build(&data);
        for (rule_name, rule) in rules() {
            let ms = median_ms(reps, || {
                std::hint::black_box(DecisionTree::grow_indexed(
                    &data, &index, &rows, &rule, &cfg,
                ));
            });
            out.insert(format!("{tier}.{name}.{rule_name}_ms"), ms);
            eprintln!("  {tier:<5} {name:<10} {rule_name:<9} {ms:9.2} ms ({n} rows)");
        }
    }
}

/// Wall time of the whole Table 5.3 harness, via the sibling
/// `experiments` binary (same build profile). `None` if it is not built.
fn t53_wall_s() -> Option<f64> {
    let exe = std::env::current_exe().ok()?;
    let experiments = exe.with_file_name("experiments");
    if !experiments.exists() {
        eprintln!("  [t5.3 skipped: {} not built]", experiments.display());
        return None;
    }
    eprintln!("  running {} t5.3 ...", experiments.display());
    let t0 = Instant::now();
    let status = std::process::Command::new(&experiments)
        .arg("t5.3")
        .stdout(std::process::Stdio::null())
        .status()
        .ok()?;
    if !status.success() {
        eprintln!("  [t5.3 failed: {status}]");
        return None;
    }
    Some(t0.elapsed().as_secs_f64())
}

fn write_json(path: &str, metrics: &BTreeMap<String, f64>) -> std::io::Result<()> {
    let mut body = String::from("{\n  \"schema\": 1,\n");
    for (i, (k, v)) in metrics.iter().enumerate() {
        let sep = if i + 1 == metrics.len() { "" } else { "," };
        body.push_str(&format!("  \"{k}\": {v:.3}{sep}\n"));
    }
    body.push_str("}\n");
    std::fs::write(path, body)
}

/// Parse the flat `"key": number` pairs back out of a baseline file.
fn read_json(path: &str) -> std::io::Result<BTreeMap<String, f64>> {
    let text = std::fs::read_to_string(path)?;
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if let Ok(v) = value.trim().parse::<f64>() {
            out.insert(key.to_string(), v);
        }
    }
    Ok(out)
}

/// Below this absolute delta a percentage regression is treated as timer
/// noise (the smallest tracked metrics are ~10 µs).
const SLACK_MS: f64 = 0.1;

/// Compare a fresh fast-tier run against the committed baseline; returns
/// the metrics that regressed beyond `tol_pct` (and beyond timer noise).
fn check(
    baseline: &BTreeMap<String, f64>,
    fresh: &BTreeMap<String, f64>,
    tol_pct: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for (key, &new_ms) in fresh {
        let Some(&old_ms) = baseline.get(key) else {
            eprintln!("  [new metric {key}: {new_ms:.2} ms, no baseline — skipped]");
            continue;
        };
        let delta_pct = (new_ms - old_ms) / old_ms * 100.0;
        let regressed = delta_pct > tol_pct && new_ms - old_ms > SLACK_MS;
        let verdict = if regressed { "REGRESSED" } else { "ok" };
        eprintln!("  {key:<40} {old_ms:9.2} -> {new_ms:9.2} ms  {delta_pct:+6.1}%  {verdict}");
        if regressed {
            failures.push(format!(
                "{key}: {old_ms:.2} -> {new_ms:.2} ms ({delta_pct:+.1}%)"
            ));
        }
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fast_only = false;
    let mut baseline_path: Option<String> = None;
    let mut out_path = "BENCH_classify.json".to_string();
    let mut tolerance = TOLERANCE_PCT;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fast" => fast_only = true,
            "--check" => baseline_path = it.next().cloned(),
            "--out" => out_path = it.next().cloned().unwrap_or(out_path),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(TOLERANCE_PCT)
            }
            other => {
                eprintln!("usage: bench_classify [--fast] [--check BASELINE] [--out PATH] [--tolerance PCT]");
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = baseline_path {
        let baseline = match read_json(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        eprintln!("perf smoke: fast tier vs {path} (tolerance {tolerance}%)");
        let mut fresh = BTreeMap::new();
        measure_tier("fast", Some(FAST_ROWS), 5, &mut fresh);
        let failures = check(&baseline, &fresh, tolerance);
        if failures.is_empty() {
            eprintln!("perf smoke passed ({} metrics)", fresh.len());
        } else {
            eprintln!("perf smoke FAILED — regressions over {tolerance}%:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        return;
    }

    let mut metrics = BTreeMap::new();
    eprintln!("fast tier (rows capped at {FAST_ROWS}):");
    measure_tier("fast", Some(FAST_ROWS), 5, &mut metrics);
    if !fast_only {
        eprintln!("full tier (all rows):");
        measure_tier("full", None, 5, &mut metrics);
        if let Some(wall) = t53_wall_s() {
            eprintln!("  full  t5.3 harness wall {wall:9.1} s");
            metrics.insert("full.t5_3_wall_s".to_string(), wall);
        }
        if let Err(e) = write_json(&out_path, &metrics) {
            eprintln!("cannot write {out_path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {out_path} ({} metrics)", metrics.len());
    }
}
