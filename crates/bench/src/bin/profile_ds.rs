//! One-split profiling helper: wall-time the four learners on one
//! dataset (development tool behind the Table 5.3 runtime budget).
//!
//! ```text
//! cargo run -p fpdm-bench --release --bin profile_ds -- satimage
//! ```
use classify::c45::{C45Config, C45};
use classify::nyuminer::{NyuConfig, NyuMinerCV, NyuMinerRS};
use classify::prune::grow_with_cv_pruning;
use classify::tree::GrowRule;
use datagen::benchmark;
use std::time::Instant;

fn main() {
    let name = std::env::args().nth(1).unwrap();
    let data = benchmark(&name, 7);
    let (train, _) = data.stratified_halves(0);
    let t = Instant::now();
    let _ = C45::fit(&data, &train, &C45Config::default());
    let c45 = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let _ = grow_with_cv_pruning(&data, &train, &GrowRule::Cart, &Default::default(), 10, 0);
    let cart = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let _ = NyuMinerCV::fit(&data, &train, &NyuConfig::default(), 10, 0);
    let nyucv = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let _ = NyuMinerRS::fit(&data, &train, &NyuConfig::default(), 5, 0.0, 0.02, 0);
    let nyurs = t.elapsed().as_secs_f64();
    println!("{name}: c45 {c45:.2}s cart {cart:.2}s nyucv {nyucv:.2}s nyurs {nyurs:.2}s");
}
