//! Calibration helper: one-split accuracy of the learners per dataset,
//! used to tune the synthetic benchmark specs (datagen::benchmarks) so
//! Table 5.3 keeps the paper's shape. Run after any generator change:
//!
//! ```text
//! cargo run -p fpdm-bench --release --bin calibrate            # all
//! cargo run -p fpdm-bench --release --bin calibrate -- yeast   # one
//! ```
use classify::c45::{C45Config, C45};
use classify::nyuminer::{NyuConfig, NyuMinerCV, NyuMinerRS};
use classify::prune::grow_with_cv_pruning;
use classify::tree::GrowRule;
use classify::Classifier;
use datagen::benchmark;

fn main() {
    let names: Vec<String> = std::env::args().skip(1).collect();
    let names = if names.is_empty() {
        vec![
            "diabetes".into(),
            "german".into(),
            "mushrooms".into(),
            "satimage".into(),
            "smoking".into(),
            "vote".into(),
            "yeast".into(),
        ]
    } else {
        names
    };
    for name in names {
        let d = benchmark(&name, 7);
        let (train, test) = d.stratified_halves(0);
        let (plur, _) = d.plurality(&train);
        let base = test.iter().filter(|&&r| d.class(r) == plur).count() as f64 / test.len() as f64;
        let cfg05 = C45Config {
            cf: 0.05,
            ..C45Config::default()
        };
        let cfg01 = C45Config {
            cf: 0.01,
            ..C45Config::default()
        };
        let c45 = C45::fit(&d, &train, &C45Config::default()).accuracy(&d, &test);
        let _c45_05 = C45::fit(&d, &train, &cfg05).accuracy(&d, &test);
        let _c45_01 = C45::fit(&d, &train, &cfg01).accuracy(&d, &test);
        let cart = grow_with_cv_pruning(&d, &train, &GrowRule::Cart, &Default::default(), 10, 0)
            .tree
            .accuracy(&d, &test);
        let nyu = NyuMinerCV::fit(&d, &train, &NyuConfig::default(), 10, 0).accuracy(&d, &test);
        let k3 = NyuConfig {
            max_branches: 3,
            ..NyuConfig::default()
        };
        let nyu3 = NyuMinerCV::fit(&d, &train, &k3, 10, 0).accuracy(&d, &test);
        let rs =
            NyuMinerRS::fit(&d, &train, &NyuConfig::default(), 3, 0.0, 0.02, 0).accuracy(&d, &test);
        println!("{name}: plur {base:.3} c45 {c45:.3} cart {cart:.3} nyucv4 {nyu:.3} nyucv3 {nyu3:.3} nyurs {rs:.3}");
    }
}
