//! The experiment harness: regenerates every table and figure of the
//! dissertation's evaluation (see the per-experiment index in DESIGN.md).
//!
//! ```text
//! cargo run -p fpdm-bench --release --bin experiments -- all
//! cargo run -p fpdm-bench --release --bin experiments -- t4.2 f4.8 t5.3
//! cargo run -p fpdm-bench --release --bin experiments -- ch4 ch5 ch6
//! ```
//!
//! Measured costs are real (this machine); parallel schedules beyond the
//! host's cores replay those costs through the `nowsim` discrete-event
//! simulator, per the substitution policy of DESIGN.md. Absolute times
//! will not match the 1998 SPARC numbers; shapes should.

use fpdm_bench::tables::{pct, render, secs};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<&str> = args.iter().map(String::as_str).collect();
    if ids.is_empty() {
        eprintln!(
            "usage: experiments [all|ch4|ch5|ch6|t4.2|f4.8|f4.9|f4.10|f4.11|f4.12|f4.13|f4.14|\
             t5.1|t5.2|t5.3|t5.4|t5.5|t5.6|t6.1|f6.3|f6.4|t6.2|f6.5|f6.6|t6.3|f6.7|f6.8|free]..."
        );
        std::process::exit(2);
    }
    if ids.contains(&"all") {
        ids = vec!["ch4", "ch5", "ch6"];
    }
    let mut expanded: Vec<&str> = Vec::new();
    for id in ids {
        match id {
            "ch4" => expanded.extend([
                "t4.2", "f4.8", "f4.9", "f4.10", "f4.11", "f4.12", "f4.13", "f4.14", "free",
            ]),
            "ch5" => expanded.extend(["t5.1", "t5.2", "t5.3", "t5.4", "t5.5", "t5.6"]),
            "ch6" => expanded.extend([
                "t6.1", "f6.3", "f6.4", "t6.2", "f6.5", "f6.6", "t6.3", "f6.7", "f6.8",
            ]),
            other => expanded.push(other),
        }
    }
    for id in expanded {
        let t0 = Instant::now();
        match id {
            "t4.2" => ch4::t4_2(),
            "f4.8" => ch4::f4_8_9(1),
            "f4.9" => ch4::f4_8_9(2),
            "f4.10" => ch4::f4_10_13(1, ch4::Strategy::LoadBalanced),
            "f4.11" => ch4::f4_10_13(1, ch4::Strategy::Optimistic),
            "f4.12" => ch4::f4_10_13(2, ch4::Strategy::LoadBalanced),
            "f4.13" => ch4::f4_10_13(2, ch4::Strategy::Optimistic),
            "f4.14" => ch4::f4_14(),
            "t5.1" => ch5::t5_1(),
            "t5.2" => ch5::t5_2(),
            "t5.3" => ch5::t5_3(),
            "t5.4" => ch5::t5_4(),
            "t5.5" => ch5::t5_5(),
            "t5.6" => ch5::t5_6(),
            "t6.1" => ch6::t6_1(),
            "f6.3" => ch6::f6_3_4("yeast"),
            "f6.4" => ch6::f6_3_4("satimage"),
            "t6.2" => ch6::t6_2(),
            "f6.5" => ch6::f6_5_6("smoking"),
            "f6.6" => ch6::f6_5_6("letter"),
            "t6.3" => ch6::t6_3(),
            "f6.7" => ch6::f6_7_8("yeast"),
            "f6.8" => ch6::f6_7_8("satimage"),
            "free" => ch4::free_cycles(),
            other => {
                eprintln!("unknown experiment id {other}");
                std::process::exit(2);
            }
        }
        eprintln!("[{id} took {:.1}s]\n", t0.elapsed().as_secs_f64());
    }
}

/// Chapter 4: biological pattern discovery on the cyclins substitute.
mod ch4 {
    use super::*;
    use datagen::cyclins_substitute;
    use fpdm_core::{
        sequential_ett, simulate_load_balanced, simulate_optimistic, CostTree, StrategyReport,
    };
    use nowsim::{MachineSpec, SimConfig};
    use seqmine::{DiscoveryParams, SeqMiningProblem};

    const SEED: u64 = 1998;
    /// The paper's sequential times for the two settings (Table 4.2),
    /// used to scale measured costs to SPARC-era magnitudes so the
    /// simulated overheads carry the same relative weight.
    const PAPER_SEQ: [f64; 2] = [1134.0, 1299.0];

    pub fn params(setting: usize) -> DiscoveryParams {
        match setting {
            // Table 4.2 setting 1: Length >= 12, Occur >= 5, Mut = 0.
            1 => DiscoveryParams::new(12, 16, 5, 0).with_sample_occurrence(5),
            // Setting 2: Length >= 16, Occur >= 12, Mut = 4.
            2 => DiscoveryParams::new(16, 22, 12, 4).with_sample_occurrence(2),
            _ => unreachable!(),
        }
    }

    fn problem(setting: usize) -> SeqMiningProblem {
        SeqMiningProblem::new(cyclins_substitute(SEED), params(setting))
    }

    pub fn t4_2() {
        println!("== Table 4.2: parameter settings and sequential results (cyclins substitute) ==");
        let mut rows = Vec::new();
        for setting in [1usize, 2] {
            let p = problem(setting);
            let t0 = Instant::now();
            let outcome = sequential_ett(&p);
            let elapsed = t0.elapsed().as_secs_f64();
            let motifs = p.report(&outcome);
            let prm = params(setting);
            rows.push(vec![
                format!("{setting}"),
                format!("{}", prm.min_length),
                format!("{}", prm.min_occurrence),
                format!("{}", prm.max_mutations),
                format!("{}", motifs.len()),
                format!("{}", outcome.tested),
                secs(elapsed),
            ]);
        }
        println!(
            "{}",
            render(
                &[
                    "Setting",
                    "MinLen",
                    "MinOccur",
                    "MaxMut",
                    "Motifs",
                    "Tested",
                    "SeqTime(s)"
                ],
                &rows
            )
        );
    }

    /// Recorded cost tree scaled so sequential time matches the paper's.
    fn scaled_tree(setting: usize) -> (CostTree, f64) {
        let p = problem(setting);
        let tree = CostTree::record_timed(&p);
        let factor = PAPER_SEQ[setting - 1] / tree.sequential_time().max(1e-9);
        let tree = tree.scaled(factor);
        let seq = tree.sequential_time();
        (tree, seq)
    }

    fn ideal(n: usize) -> Vec<MachineSpec> {
        (0..n).map(|_| MachineSpec::ideal()).collect()
    }

    #[derive(Clone, Copy)]
    pub enum Strategy {
        LoadBalanced,
        Optimistic,
    }

    fn run(tree: &CostTree, strategy: Strategy, machines: usize, level: usize) -> StrategyReport {
        let cfg = SimConfig::lan_default();
        match strategy {
            Strategy::LoadBalanced => simulate_load_balanced(tree, &ideal(machines), &cfg, level),
            Strategy::Optimistic => simulate_optimistic(tree, &ideal(machines), &cfg, level),
        }
    }

    pub fn f4_8_9(setting: usize) {
        println!(
            "== Figure 4.{}: optimistic vs load-balanced efficiency, setting {setting} ==",
            if setting == 1 { 8 } else { 9 }
        );
        let (tree, _) = scaled_tree(setting);
        let mut rows = Vec::new();
        for m in [1usize, 2, 4, 6, 8, 10] {
            let lb = run(&tree, Strategy::LoadBalanced, m, 1);
            let opt = run(&tree, Strategy::Optimistic, m, 1);
            rows.push(vec![
                format!("{m}"),
                pct(lb.efficiency(m)),
                pct(opt.efficiency(m)),
            ]);
        }
        println!(
            "{}",
            render(&["Machines", "LoadBalanced", "Optimistic"], &rows)
        );
    }

    pub fn f4_10_13(setting: usize, strategy: Strategy) {
        let fig = match (setting, strategy) {
            (1, Strategy::LoadBalanced) => 10,
            (1, Strategy::Optimistic) => 11,
            (2, Strategy::LoadBalanced) => 12,
            _ => 13,
        };
        let label = match strategy {
            Strategy::LoadBalanced => "load-balanced",
            Strategy::Optimistic => "optimistic",
        };
        println!("== Figure 4.{fig}: {label} +/- adaptive master, setting {setting} ==");
        let (tree, _) = scaled_tree(setting);
        let mut rows = Vec::new();
        for m in [1usize, 2, 4, 6, 8, 10] {
            let plain = run(&tree, strategy, m, 1);
            // Adaptive master (§4.3.2): level 2 from 6 machines up.
            let level = if m >= 6 { 2 } else { 1 };
            let adaptive = run(&tree, strategy, m, level);
            rows.push(vec![
                format!("{m}"),
                pct(plain.efficiency(m)),
                pct(adaptive.efficiency(m)),
            ]);
        }
        println!(
            "{}",
            render(&["Machines", "w/o adaptive", "w/ adaptive"], &rows)
        );
    }

    /// The thesis demonstration (no single paper figure — §1.1's premise):
    /// run the setting-2 discovery on owner-occupied workstation pools and
    /// show the job completes on harvested idle cycles alone, with owner
    /// interruptions absorbed by PLinda-style abort/requeue.
    pub fn free_cycles() {
        println!("== Free mining: harvesting idle cycles on owner-occupied machines ==");
        let (tree, seq) = scaled_tree(2);
        let mut cfg = SimConfig::lan_default();
        cfg.requeue_delay = 2.0;
        // Owner bursts of ~3 min separated by ~6 min of idleness — the
        // same idle share as a workday trace, but at a cadence that
        // interrupts a minutes-long job the way a 1998 LAN job spanning
        // hours was interrupted by its machines' owners.
        let pattern = nowsim::traces::OwnerPattern {
            busy_mean: 180.0,
            idle_mean: 360.0,
        };
        let mut rows = Vec::new();
        for m in [5usize, 10, 20] {
            let pool = nowsim::traces::workday_pool(1998, m, 1e7, &pattern);
            let idle = nowsim::traces::idle_fraction(&pool, 1e7);
            let r = simulate_load_balanced(&tree, &pool, &cfg, 2);
            let dedicated = simulate_load_balanced(&tree, &ideal(m), &cfg, 2);
            rows.push(vec![
                format!("{m}"),
                pct(idle),
                secs(r.makespan),
                format!("{}", r.sim.aborted),
                secs(dedicated.makespan),
                format!("{:.2}", r.makespan / dedicated.makespan),
            ]);
        }
        println!(
            "{}",
            render(
                &[
                    "Machines",
                    "IdleFrac",
                    "Time(s)",
                    "Interrupts",
                    "Dedicated(s)",
                    "Slowdown"
                ],
                &rows
            )
        );
        println!(
            "sequential reference: {:.0}s; every interrupted task was re-queued and completed\n",
            seq
        );
    }

    pub fn f4_14() {
        println!("== Figure 4.14: running time on a large heterogeneous network ==");
        let (tree, seq) = scaled_tree(2);
        let cfg = SimConfig::lan_default();
        let mut rows = Vec::new();
        for m in (5..=45).step_by(5) {
            // "They are not identical machines": deterministic speed
            // spread of 0.7x..1.3x.
            let machines: Vec<MachineSpec> = (0..m)
                .map(|i| MachineSpec::with_speed(0.7 + 0.15 * (i % 5) as f64))
                .collect();
            let r = simulate_load_balanced(&tree, &machines, &cfg, 2);
            rows.push(vec![
                format!("{m}"),
                secs(r.makespan),
                format!("{:.1}", seq / r.makespan),
            ]);
        }
        println!("{}", render(&["Machines", "Time(s)", "Speedup"], &rows));
    }
}

/// Chapter 5: NyuMiner vs C4.5 vs CART, complementarity, FX.
mod ch5 {
    use super::*;
    use classify::c45::{C45Config, C45};
    use classify::forex::run_forex;
    use classify::nyuminer::{NyuConfig, NyuMinerCV, NyuMinerRS};
    use classify::prune::grow_with_cv_pruning_indexed;
    use classify::tree::GrowRule;
    use classify::{complementarity, Classifier, ColumnarIndex, Dataset};
    use datagen::{all_specs, benchmark, fx_pairs};

    const DATA_SEED: u64 = 7;
    const SPLITS: usize = 10;
    const TABLE_DATASETS: [&str; 7] = [
        "diabetes",
        "german",
        "mushrooms",
        "satimage",
        "smoking",
        "vote",
        "yeast",
    ];

    pub fn t5_1() {
        println!("== Table 5.1: benchmark dataset descriptions (synthetic substitutes) ==");
        let mut rows = Vec::new();
        for s in all_specs() {
            if s.name == "letter" {
                continue;
            }
            rows.push(vec![
                s.name.to_string(),
                format!("{}", s.rows),
                format!(
                    "latent rule tree of depth {}, signal {:.2}",
                    s.latent_depth, s.signal
                ),
            ]);
        }
        println!(
            "{}",
            render(&["Dataset", "Rows", "Planted structure"], &rows)
        );
    }

    pub fn t5_2() {
        println!("== Table 5.2: statistical features of the benchmark datasets ==");
        let mut rows = Vec::new();
        for s in all_specs() {
            if s.name == "letter" {
                continue;
            }
            let d = benchmark(s.name, DATA_SEED);
            rows.push(vec![
                s.name.to_string(),
                format!("{}", d.len()),
                pct(d.rows_with_missing()),
                pct(d.missing_rate()),
                format!("{}", s.categorical.len()),
                format!("{}", s.numeric),
                format!("{}", s.numeric + s.categorical.len()),
                format!("{}", d.n_classes()),
            ]);
        }
        println!(
            "{}",
            render(
                &[
                    "Dataset",
                    "Cases",
                    "RowsMissing",
                    "CellsMissing",
                    "Cat",
                    "Num",
                    "Attrs",
                    "Classes"
                ],
                &rows
            )
        );
    }

    struct FourWay {
        c45: Vec<u16>,
        cart: Vec<u16>,
        nyucv: Vec<u16>,
        nyurs: Vec<u16>,
    }

    fn fit_predict(
        data: &Dataset,
        index: &ColumnarIndex,
        train: &[usize],
        test: &[usize],
        seed: u64,
    ) -> FourWay {
        let c45 = C45::fit_indexed(data, index, train, &C45Config::default());
        let cart = grow_with_cv_pruning_indexed(
            data,
            index,
            train,
            &GrowRule::Cart,
            &Default::default(),
            10,
            seed,
        );
        let nyu = NyuConfig::default();
        let nyucv = NyuMinerCV::fit_indexed(data, index, train, &nyu, 10, seed);
        let nyurs = NyuMinerRS::fit_indexed(data, index, train, &nyu, 3, 0.0, 0.02, seed);
        FourWay {
            c45: test.iter().map(|&r| c45.predict(data, r)).collect(),
            cart: test.iter().map(|&r| cart.tree.predict(data, r)).collect(),
            nyucv: test.iter().map(|&r| nyucv.predict(data, r)).collect(),
            nyurs: test.iter().map(|&r| nyurs.predict(data, r)).collect(),
        }
    }

    fn accuracy(data: &Dataset, test: &[usize], preds: &[u16]) -> f64 {
        let ok = test
            .iter()
            .zip(preds)
            .filter(|(&r, &p)| data.class(r) == p)
            .count();
        ok as f64 / test.len() as f64
    }

    pub fn t5_3() {
        println!("== Table 5.3: classification accuracies over {SPLITS} stratified half-splits ==");
        let mut rows = Vec::new();
        for name in TABLE_DATASETS {
            let data = benchmark(name, DATA_SEED);
            // One columnar ingest per dataset, shared by all splits and
            // all four learners.
            let index = ColumnarIndex::build(&data);
            let mut sums = [0.0f64; 5];
            for split in 0..SPLITS {
                let (train, test) = data.stratified_halves(split as u64);
                let preds = fit_predict(&data, &index, &train, &test, split as u64);
                let (plur, _) = data.plurality(&train);
                sums[0] += test.iter().filter(|&&r| data.class(r) == plur).count() as f64
                    / test.len() as f64;
                sums[1] += accuracy(&data, &test, &preds.c45);
                sums[2] += accuracy(&data, &test, &preds.cart);
                sums[3] += accuracy(&data, &test, &preds.nyucv);
                sums[4] += accuracy(&data, &test, &preds.nyurs);
            }
            let n = SPLITS as f64;
            rows.push(vec![
                name.to_string(),
                pct(sums[0] / n),
                pct(sums[1] / n),
                pct(sums[2] / n),
                pct(sums[3] / n),
                pct(sums[4] / n),
            ]);
        }
        println!(
            "{}",
            render(
                &[
                    "Dataset",
                    "Plurality",
                    "C4.5",
                    "CART",
                    "NyuMiner-CV",
                    "NyuMiner-RS"
                ],
                &rows
            )
        );
    }

    pub fn t5_4() {
        println!("== Table 5.4: complementarity tests (C4.5, CART, NyuMiner-RS) ==");
        let mut rows = Vec::new();
        for name in TABLE_DATASETS {
            let data = benchmark(name, DATA_SEED);
            let index = ColumnarIndex::build(&data);
            let (train, test) = data.stratified_halves(0);
            let preds = fit_predict(&data, &index, &train, &test, 0);
            let rep = complementarity(&data, &test, &[preds.c45, preds.cart, preds.nyurs]);
            rows.push(vec![
                name.to_string(),
                format!("{}", rep.total),
                format!("{}", rep.all_agree),
                pct(rep.coverage),
                pct(rep.agree_accuracy),
                format!("{}", rep.disagree),
                pct(rep.at_least_one_correct),
            ]);
        }
        println!(
            "{}",
            render(
                &[
                    "Dataset",
                    "Cases",
                    "Agree",
                    "Coverage",
                    "AgreeAcc",
                    "Disagree",
                    ">=1 correct"
                ],
                &rows
            )
        );
    }

    pub fn t5_5() {
        println!("== Table 5.5: foreign exchange datasets (synthetic substitutes) ==");
        let mut rows = Vec::new();
        for (name, rates) in fx_pairs(DATA_SEED) {
            rows.push(vec![name.to_string(), format!("{}", rates.len() - 253)]);
        }
        println!("{}", render(&["Pair", "DataElements"], &rows));
    }

    pub fn t5_6() {
        println!("== Table 5.6: money made in foreign exchange (Cmin 80%, Smin 1%) ==");
        let mut rows = Vec::new();
        for (name, rates) in fx_pairs(DATA_SEED) {
            let run = run_forex(&rates, &NyuConfig::default(), 3, 0.80, 0.01, 5);
            let o = &run.outcome;
            rows.push(vec![
                name.to_string(),
                format!("{}", run.rules_selected),
                format!("{}", o.days_covered),
                pct(o.accuracy),
                format!("{:.0}", o.first_currency),
                format!("{:+.1}%", o.gain_first),
                format!("{:.0}", o.second_currency),
                format!("{:+.1}%", o.gain_second),
                format!("{:+.1}%", o.average_gain()),
            ]);
        }
        println!(
            "{}",
            render(
                &[
                    "Pair", "Rules", "Days", "Accuracy", "1stCur", "Gain1", "2ndCur", "Gain2",
                    "AvgGain"
                ],
                &rows
            )
        );
    }
}

/// Chapter 6: sequential baselines and parallel speedups.
mod ch6 {
    use super::*;
    use classify::c45::{grow_windowed_indexed, C45Config};
    use classify::nyuminer::{grow_incremental_indexed, NyuConfig, NyuMinerCV};
    use classify::prune::ccp_sequence;
    use classify::tree::{DecisionTree, GrowRule};
    use classify::ColumnarIndex;
    use datagen::benchmark;
    use nowsim::SimConfig;
    use parmine::{simulate_parallel_cv, simulate_parallel_trials};

    const DATA_SEED: u64 = 7;

    fn nyu_rule(cfg: &NyuConfig) -> GrowRule<'static> {
        GrowRule::NyuMiner {
            max_branches: cfg.max_branches,
            impurity: cfg.impurity.as_dyn(),
        }
    }

    pub fn t6_1() {
        println!("== Table 6.1: sequential NyuMiner-CV time (s) vs V ==");
        let mut rows = Vec::new();
        for name in ["yeast", "satimage"] {
            let data = benchmark(name, DATA_SEED);
            let index = ColumnarIndex::build(&data);
            let rows_all = data.all_rows();
            let cfg = NyuConfig::default();
            let mut cells = vec![name.to_string()];
            for v in [0usize, 4, 8, 12, 16, 20] {
                let t0 = Instant::now();
                let _ = NyuMinerCV::fit_indexed(&data, &index, &rows_all, &cfg, v, 1);
                cells.push(secs(t0.elapsed().as_secs_f64()));
            }
            rows.push(cells);
        }
        println!(
            "{}",
            render(
                &["Dataset", "V=0", "V=4", "V=8", "V=12", "V=16", "V=20"],
                &rows
            )
        );
    }

    /// Measured costs for the parallel CV figures: the main tree (grow +
    /// pruning sequence) and 20 auxiliary trees (19/20 learning sets).
    fn cv_costs(name: &str) -> (f64, Vec<f64>) {
        let data = benchmark(name, DATA_SEED);
        // The parallel driver shares one index across master and workers,
        // so the ingest stays outside the per-tree costs the simulator
        // replays.
        let index = ColumnarIndex::build(&data);
        let rows = data.all_rows();
        let cfg = NyuConfig::default();
        let t0 = Instant::now();
        let main = DecisionTree::grow_indexed(&data, &index, &rows, &nyu_rule(&cfg), &cfg.grow);
        let _ = ccp_sequence(&main);
        let main_cost = t0.elapsed().as_secs_f64();
        let folds = data.folds(&rows, 20, 1);
        let aux: Vec<f64> = (0..20)
            .map(|i| {
                let train: Vec<usize> = folds
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .flat_map(|(_, f)| f.iter().copied())
                    .collect();
                let t0 = Instant::now();
                let aux =
                    DecisionTree::grow_indexed(&data, &index, &train, &nyu_rule(&cfg), &cfg.grow);
                let _ = ccp_sequence(&aux);
                t0.elapsed().as_secs_f64()
            })
            .collect();
        (main_cost, aux)
    }

    pub fn f6_3_4(name: &str) {
        let fig = if name == "yeast" { 3 } else { 4 };
        println!("== Figure 6.{fig}: parallel NyuMiner-CV on {name} (V = 4 x workers) ==");
        let (main_cost, aux) = cv_costs(name);
        let cfg = SimConfig::lan_default();
        let mut rows = Vec::new();
        for m in 1usize..=6 {
            let v = 4 * (m - 1);
            let r = simulate_parallel_cv(main_cost, &aux[..v], m, &cfg);
            let sequential = main_cost + aux[..v].iter().sum::<f64>();
            rows.push(vec![
                format!("{m}"),
                format!("{v}"),
                secs(r.makespan),
                format!("{:.1}", sequential / r.makespan),
            ]);
        }
        println!(
            "{}",
            render(&["Machines", "V", "Time(s)", "Speedup"], &rows)
        );
    }

    /// Measured per-trial costs for the windowing/sampling figures.
    fn trial_costs(name: &str, flavor: &str, trials: usize) -> Vec<f64> {
        let data = benchmark(name, DATA_SEED);
        let index = ColumnarIndex::build(&data);
        let rows = data.all_rows();
        (0..trials as u64)
            .map(|t| {
                let t0 = Instant::now();
                match flavor {
                    "c45" => {
                        let _ = grow_windowed_indexed(
                            &data,
                            &index,
                            &rows,
                            &C45Config::default(),
                            100 + t,
                        );
                    }
                    _ => {
                        let _ = grow_incremental_indexed(
                            &data,
                            &index,
                            &rows,
                            &NyuConfig::default(),
                            100u64.wrapping_add(t * 7919),
                        );
                    }
                }
                t0.elapsed().as_secs_f64()
            })
            .collect()
    }

    fn sequential_trial_table(title: &str, datasets: [&str; 2], flavor: &str) {
        println!("{title}");
        let mut rows = Vec::new();
        for name in datasets {
            let costs = trial_costs(name, flavor, 10);
            let mut cells = vec![name.to_string()];
            for t in [1usize, 2, 4, 6, 8, 10] {
                let total: f64 = costs[..t].iter().sum();
                cells.push(secs(total));
            }
            rows.push(cells);
        }
        println!(
            "{}",
            render(&["Dataset", "1", "2", "4", "6", "8", "10"], &rows)
        );
    }

    pub fn t6_2() {
        sequential_trial_table(
            "== Table 6.2: sequential C4.5 time (s) vs windowing trials ==",
            ["smoking", "letter"],
            "c45",
        );
    }

    pub fn t6_3() {
        sequential_trial_table(
            "== Table 6.3: sequential NyuMiner-RS time (s) vs trees ==",
            ["yeast", "satimage"],
            "rs",
        );
    }

    fn trial_speedup_figure(title: &str, name: &str, flavor: &str) {
        println!("{title}");
        let costs = trial_costs(name, flavor, 10);
        let cfg = SimConfig::lan_default();
        let sequential: f64 = costs.iter().sum();
        let mut rows = Vec::new();
        for m in [1usize, 2, 4, 6, 8, 10] {
            let r = simulate_parallel_trials(&costs, m, &cfg);
            rows.push(vec![
                format!("{m}"),
                secs(r.makespan),
                format!("{:.1}", sequential / r.makespan),
            ]);
        }
        println!("{}", render(&["Machines", "Time(s)", "Speedup"], &rows));
    }

    pub fn f6_5_6(name: &str) {
        let fig = if name == "smoking" { 5 } else { 6 };
        trial_speedup_figure(
            &format!("== Figure 6.{fig}: parallel C4.5 on {name} (10 trials) =="),
            name,
            "c45",
        );
    }

    pub fn f6_7_8(name: &str) {
        let fig = if name == "yeast" { 7 } else { 8 };
        trial_speedup_figure(
            &format!("== Figure 6.{fig}: parallel NyuMiner-RS on {name} (10 trees) =="),
            name,
            "rs",
        );
    }
}
