//! # `fpdm-bench` — experiment harness and micro-benchmarks
//!
//! The `experiments` binary regenerates every table and figure of the
//! dissertation's evaluation (see DESIGN.md's per-experiment index);
//! the Criterion benches under `benches/` cover the micro-level design
//! choices (tuple-space ops, GST construction, motif matching, tree edit
//! distance, Apriori counting structures, the optimal-split DP, tree
//! growth).

/// Shared helpers for the experiment binary and benches.
pub mod tables;
