//! Property tests of episode window counting and its lattice structure.

use episodes::{EpisodeMiningProblem, EpisodeParams, EventSequence};
use fpdm_core::{sequential_edt, sequential_ett, MiningProblem};
use proptest::prelude::*;

fn arb_stream() -> impl Strategy<Value = EventSequence> {
    prop::collection::vec((0u32..60, 0u8..3), 1..40).prop_map(|pairs| {
        EventSequence::new(pairs.into_iter().map(|(t, e)| (t, b'a' + e)).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn containment_monotone_in_window_width(
        stream in arb_stream(),
        pat in prop::collection::vec(0u8..3, 1..4),
    ) {
        let pat: Vec<u8> = pat.into_iter().map(|e| b'a' + e).collect();
        for w in 1..8u32 {
            for t in -5i64..20 {
                if stream.window_contains(t, w, &pat) {
                    prop_assert!(stream.window_contains(t, w + 1, &pat));
                }
            }
        }
    }

    #[test]
    fn count_anti_monotone_in_pattern(
        stream in arb_stream(),
        pat in prop::collection::vec(0u8..3, 2..5),
        w in 2u32..8,
    ) {
        let pat: Vec<u8> = pat.into_iter().map(|e| b'a' + e).collect();
        let whole = stream.window_count(w, &pat);
        for drop in 0..pat.len() {
            let sub: Vec<u8> = pat
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != drop)
                .map(|(_, &e)| e)
                .collect();
            prop_assert!(stream.window_count(w, &sub) >= whole);
        }
    }

    #[test]
    fn edt_equals_ett_on_random_streams(
        stream in arb_stream(),
        w in 2u32..6,
        frac in 2usize..6,
    ) {
        let windows = stream.n_windows(w).max(1);
        let problem = EpisodeMiningProblem::new(
            stream,
            EpisodeParams {
                window: w,
                min_windows: windows / frac,
                min_length: 1,
                max_length: 3,
            },
        );
        let edt = sequential_edt(&problem);
        let ett = sequential_ett(&problem);
        prop_assert_eq!(&edt.good, &ett.good);
        prop_assert!(edt.tested <= ett.tested);
    }

    #[test]
    fn singletons_counted_exactly(stream in arb_stream(), w in 1u32..6) {
        // A single event type's window count equals the size of the union
        // of per-occurrence windows, computed directly.
        for &e in stream.alphabet() {
            let brute = {
                let mut starts = std::collections::BTreeSet::new();
                for &(t, ev) in stream.events() {
                    if ev == e {
                        for s in (t as i64 - w as i64 + 1)..=(t as i64) {
                            starts.insert(s);
                        }
                    }
                }
                // Clip to the WINEPI start range.
                let (first, last) = stream.span().unwrap();
                starts
                    .into_iter()
                    .filter(|&s| s > first as i64 - w as i64 && s <= last as i64)
                    .count()
            };
            prop_assert_eq!(stream.window_count(w, &[e]), brute);
        }
    }

    #[test]
    fn children_and_subpatterns_are_consistent(stream in arb_stream()) {
        let problem = EpisodeMiningProblem::new(
            stream,
            EpisodeParams {
                window: 4,
                min_windows: 1,
                min_length: 1,
                max_length: 3,
            },
        );
        // Every child's subpatterns include its parent.
        let parent = vec![problem.events().alphabet()[0]];
        for child in problem.children(&parent) {
            let subs = problem.immediate_subpatterns(&child);
            prop_assert!(subs.contains(&parent), "{child:?} missing parent {parent:?}");
        }
    }
}
