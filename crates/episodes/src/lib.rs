//! # `episodes` — frequent episode discovery in event sequences
//!
//! The dissertation's §8.2 names *frequent episode discovery* as a prime
//! candidate for the E-dag framework ("many applications fit the pattern
//! lattice paradigm"); this crate implements it, WINEPI-style (Mannila,
//! Toivonen & Verkamo): given a long event sequence and a window width
//! `w`, find all **serial episodes** — ordered tuples of event types —
//! that occur (as subsequences) in at least `min_frequency` of the
//! sliding windows.
//!
//! Window frequency is anti-monotone under subsequence removal: every
//! window containing `A → B → C` contains `A → C`, so the episode lattice
//! is exactly a pattern-lattice mining application:
//!
//! * pattern: the event-type sequence;
//! * children: append any event type (unique-parent generation);
//! * immediate subpatterns: all drop-one-position subsequences;
//! * goodness: the count of windows containing the episode in order.
//!
//! ```
//! use episodes::{discover_episodes, EpisodeParams, EventSequence};
//!
//! // A, B alternating with a C in between: A→B recurs everywhere.
//! let events = EventSequence::new(vec![
//!     (0, b'A'), (1, b'C'), (2, b'B'),
//!     (4, b'A'), (5, b'B'),
//!     (8, b'A'), (9, b'C'), (10, b'B'),
//! ]);
//! let found = discover_episodes(&events, EpisodeParams {
//!     window: 4, min_windows: 3, min_length: 2, max_length: 3,
//! });
//! assert!(found.iter().any(|e| e.episode == b"AB".to_vec()));
//! ```

#![warn(missing_docs)]

use fpdm_core::{
    parallel_ett, parallel_wave, sequential_ett, MiningOutcome, MiningProblem, ParallelConfig,
    PatternCodec,
};
use std::sync::Arc;

/// A time-stamped event stream, sorted by time.
#[derive(Debug, Clone)]
pub struct EventSequence {
    /// `(time, event type)` pairs, ascending in time.
    events: Vec<(u32, u8)>,
    /// Distinct event types, ascending.
    alphabet: Vec<u8>,
}

impl EventSequence {
    /// Build from raw `(time, event)` pairs (sorted internally).
    pub fn new(mut events: Vec<(u32, u8)>) -> Self {
        events.sort_unstable();
        let mut alphabet: Vec<u8> = events
            .iter()
            .map(|&(_, e)| e)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        alphabet.sort_unstable();
        EventSequence { events, alphabet }
    }

    /// The events.
    pub fn events(&self) -> &[(u32, u8)] {
        &self.events
    }

    /// Distinct event types.
    pub fn alphabet(&self) -> &[u8] {
        &self.alphabet
    }

    /// Time span `[first, last]` of the stream (`None` when empty).
    pub fn span(&self) -> Option<(u32, u32)> {
        Some((self.events.first()?.0, self.events.last()?.0))
    }

    /// Number of width-`w` windows considered by WINEPI: one starting at
    /// every integer time in `[first - w + 1, last]` (each event is seen
    /// by exactly `w` windows).
    pub fn n_windows(&self, w: u32) -> usize {
        match self.span() {
            Some((first, last)) => (last - first + w) as usize,
            None => 0,
        }
    }

    /// Does the half-open window `[t, t + w)` contain `episode` as an
    /// in-order subsequence?
    pub fn window_contains(&self, t: i64, w: u32, episode: &[u8]) -> bool {
        let end = t + w as i64;
        let start = self.events.partition_point(|&(time, _)| (time as i64) < t);
        let mut need = 0usize;
        for &(time, ev) in &self.events[start..] {
            if (time as i64) >= end {
                break;
            }
            if need < episode.len() && ev == episode[need] {
                need += 1;
                if need == episode.len() {
                    return true;
                }
            }
        }
        episode.is_empty()
    }

    /// WINEPI window count: the number of width-`w` windows containing
    /// `episode` in order.
    pub fn window_count(&self, w: u32, episode: &[u8]) -> usize {
        let Some((first, last)) = self.span() else {
            return 0;
        };
        let lo = first as i64 - w as i64 + 1;
        let hi = last as i64;
        (lo..=hi)
            .filter(|&t| self.window_contains(t, w, episode))
            .count()
    }
}

/// Discovery parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpisodeParams {
    /// Window width `w`.
    pub window: u32,
    /// Minimum number of containing windows.
    pub min_windows: usize,
    /// Minimum episode length for the report.
    pub min_length: usize,
    /// Maximum episode length (bounds the traversal).
    pub max_length: usize,
}

/// A discovered frequent episode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequentEpisode {
    /// The event-type sequence.
    pub episode: Vec<u8>,
    /// Number of width-`w` windows containing it.
    pub windows: usize,
}

/// Frequent-episode discovery as a pattern-lattice mining problem.
pub struct EpisodeMiningProblem {
    events: EventSequence,
    params: EpisodeParams,
}

impl EpisodeMiningProblem {
    /// Build the problem.
    pub fn new(events: EventSequence, params: EpisodeParams) -> Self {
        assert!(params.window >= 1);
        EpisodeMiningProblem { events, params }
    }

    /// The underlying stream.
    pub fn events(&self) -> &EventSequence {
        &self.events
    }

    /// Report the good episodes meeting the length floor.
    pub fn report(&self, outcome: &MiningOutcome<Vec<u8>>) -> Vec<FrequentEpisode> {
        let mut out: Vec<FrequentEpisode> = outcome
            .good
            .iter()
            .filter(|(e, _)| e.len() >= self.params.min_length)
            .map(|(e, &w)| FrequentEpisode {
                episode: e.clone(),
                windows: w as usize,
            })
            .collect();
        out.sort_by(|a, b| a.episode.cmp(&b.episode));
        out
    }
}

impl MiningProblem for EpisodeMiningProblem {
    type Pattern = Vec<u8>;

    fn root(&self) -> Vec<u8> {
        Vec::new()
    }

    fn pattern_len(&self, p: &Vec<u8>) -> usize {
        p.len()
    }

    fn children(&self, p: &Vec<u8>) -> Vec<Vec<u8>> {
        if p.len() >= self.params.max_length {
            return Vec::new();
        }
        self.events
            .alphabet
            .iter()
            .map(|&e| {
                let mut q = p.clone();
                q.push(e);
                q
            })
            .collect()
    }

    fn immediate_subpatterns(&self, p: &Vec<u8>) -> Vec<Vec<u8>> {
        let mut subs: Vec<Vec<u8>> = (0..p.len())
            .map(|drop| {
                p.iter()
                    .enumerate()
                    .filter(|(i, _)| *i != drop)
                    .map(|(_, &e)| e)
                    .collect()
            })
            .collect();
        subs.sort();
        subs.dedup();
        subs
    }

    fn goodness(&self, p: &Vec<u8>) -> f64 {
        self.events.window_count(self.params.window, p) as f64
    }

    fn is_good(&self, _p: &Vec<u8>, goodness: f64) -> bool {
        goodness >= self.params.min_windows as f64
    }
}

impl PatternCodec for EpisodeMiningProblem {
    fn encode_pattern(&self, p: &Vec<u8>) -> Vec<u8> {
        p.clone()
    }
    fn decode_pattern(&self, bytes: &[u8]) -> Vec<u8> {
        bytes.to_vec()
    }
}

/// Sequential discovery of all frequent serial episodes.
pub fn discover_episodes(events: &EventSequence, params: EpisodeParams) -> Vec<FrequentEpisode> {
    let problem = EpisodeMiningProblem::new(events.clone(), params);
    let outcome = sequential_ett(&problem);
    problem.report(&outcome)
}

/// Parallel discovery on the PLinda runtime.
pub fn discover_episodes_parallel(
    events: &EventSequence,
    params: EpisodeParams,
    config: &ParallelConfig,
) -> Vec<FrequentEpisode> {
    let problem = Arc::new(EpisodeMiningProblem::new(events.clone(), params));
    let outcome = parallel_ett(Arc::clone(&problem), config);
    problem.report(&outcome)
}

/// Parallel discovery as the `"episodes"` farm program: candidate-
/// partitioned task waves over the append-an-event lattice
/// ([`fpdm_core::parallel_wave`]). Bit-identical to [`discover_episodes`];
/// runs unchanged over an in-process space or a socket broker
/// (`config.space`).
pub fn discover_episodes_farm(
    events: &EventSequence,
    params: EpisodeParams,
    config: &ParallelConfig,
) -> Vec<FrequentEpisode> {
    let problem = Arc::new(EpisodeMiningProblem::new(events.clone(), params));
    let outcome = parallel_wave("episodes", Arc::clone(&problem), config);
    problem.report(&outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpdm_core::sequential_edt;

    fn stream() -> EventSequence {
        // A..B pairs every 5 ticks; C noise.
        let mut ev = Vec::new();
        for k in 0..20u32 {
            ev.push((5 * k, b'A'));
            ev.push((5 * k + 2, b'B'));
            if k % 3 == 0 {
                ev.push((5 * k + 1, b'C'));
            }
        }
        EventSequence::new(ev)
    }

    #[test]
    fn window_containment_basics() {
        let e = EventSequence::new(vec![(0, b'A'), (2, b'B'), (5, b'A')]);
        assert!(e.window_contains(0, 3, b"AB"));
        assert!(!e.window_contains(0, 2, b"AB")); // B at t=2 excluded
        assert!(!e.window_contains(0, 3, b"BA")); // order matters
        assert!(e.window_contains(2, 4, b"BA"));
        assert!(e.window_contains(0, 1, b""));
    }

    #[test]
    fn window_count_matches_brute_force() {
        let e = stream();
        for pat in [b"A".as_slice(), b"AB", b"BA", b"ABC", b"AA"] {
            let w = 6;
            let (first, last) = e.span().unwrap();
            let brute = ((first as i64 - w as i64 + 1)..=(last as i64))
                .filter(|&t| e.window_contains(t, w, pat))
                .count();
            assert_eq!(e.window_count(w, pat), brute);
        }
    }

    #[test]
    fn anti_monotone_under_drop_one() {
        let e = stream();
        let p = EpisodeMiningProblem::new(
            e,
            EpisodeParams {
                window: 8,
                min_windows: 1,
                min_length: 1,
                max_length: 4,
            },
        );
        for episode in [b"AB".to_vec(), b"ABA".to_vec(), b"CAB".to_vec()] {
            let whole = p.goodness(&episode);
            for sub in p.immediate_subpatterns(&episode) {
                assert!(p.goodness(&sub) >= whole, "{sub:?} vs {episode:?}");
            }
        }
    }

    #[test]
    fn planted_episode_found() {
        let found = discover_episodes(
            &stream(),
            EpisodeParams {
                window: 5,
                min_windows: 40,
                min_length: 2,
                max_length: 3,
            },
        );
        assert!(
            found.iter().any(|f| f.episode == b"AB".to_vec()),
            "{found:?}"
        );
        // BA across period boundaries is rarer at this window width.
        for f in &found {
            assert!(f.windows >= 40);
        }
    }

    #[test]
    fn edt_ett_and_parallel_agree() {
        let params = EpisodeParams {
            window: 7,
            min_windows: 25,
            min_length: 1,
            max_length: 3,
        };
        let p = EpisodeMiningProblem::new(stream(), params.clone());
        let edt = sequential_edt(&p);
        let ett = sequential_ett(&p);
        assert_eq!(edt.good, ett.good);
        assert!(edt.tested <= ett.tested);
        let par = discover_episodes_parallel(
            &stream(),
            params.clone(),
            &ParallelConfig::load_balanced(3),
        );
        let seq = discover_episodes(&stream(), params);
        assert_eq!(seq, par);
    }

    #[test]
    fn farm_discovery_matches_golden_fixture() {
        // The doc-test stream, mined on the farm: A→B recurs in 40+
        // windows; the report is pinned bit-for-bit.
        let found = discover_episodes_farm(
            &stream(),
            EpisodeParams {
                window: 5,
                min_windows: 40,
                min_length: 2,
                max_length: 3,
            },
            &ParallelConfig::load_balanced(3),
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].episode, b"AB".to_vec());
        assert!(found[0].windows >= 40);
    }

    #[test]
    fn farm_discovery_is_bit_identical_to_sequential() {
        let params = EpisodeParams {
            window: 7,
            min_windows: 25,
            min_length: 1,
            max_length: 3,
        };
        let sequential = discover_episodes(&stream(), params.clone());
        for cfg in [
            ParallelConfig::load_balanced(1),
            ParallelConfig::load_balanced(4),
            ParallelConfig::load_balanced(3).with_prefetch(4),
            ParallelConfig::load_balanced(2)
                .kill_after(std::time::Duration::from_millis(1), 0)
                .kill_after(std::time::Duration::from_millis(3), 1),
        ] {
            let farm = discover_episodes_farm(&stream(), params.clone(), &cfg);
            assert_eq!(sequential, farm);
        }
    }

    #[test]
    fn empty_stream() {
        let e = EventSequence::new(vec![]);
        assert_eq!(e.n_windows(5), 0);
        let found = discover_episodes(
            &e,
            EpisodeParams {
                window: 5,
                min_windows: 1,
                min_length: 1,
                max_length: 2,
            },
        );
        assert!(found.is_empty());
    }
}
