//! Golden equivalence suite: the presort-once columnar engine must
//! reproduce the classic per-node growth path **byte for byte** — same
//! tests, same thresholds, same class counts, same leaf labels — on the
//! seven benchmark datasets of Table 5.1 and under a property test over
//! random small datasets with missing values.

use classify::columnar::{columnar_best_split, columnar_c45_split};
use classify::impurity::{Entropy, Gini, Impurity};
use classify::split::{best_split, c45_split};
use classify::tree::{DecisionTree, GrowConfig, GrowRule};
use classify::{AttrValue, Attribute, ColumnarIndex, Dataset};
use proptest::prelude::*;

/// The Table 5.1 benchmark suite (the `letter` spec is omitted: 20k rows
/// × 16 numeric attributes is a bench workload, not a debug-mode test).
const BENCHES: [&str; 7] = [
    "diabetes",
    "german",
    "mushrooms",
    "satimage",
    "smoking",
    "vote",
    "yeast",
];

/// Cap on rows grown per dataset — keeps the reference path (which
/// re-sorts every numeric attribute at every node) affordable in debug
/// builds while still exercising every attribute and class.
const MAX_ROWS: usize = 1200;

fn rules() -> Vec<(&'static str, GrowRule<'static>)> {
    vec![
        (
            "nyuminer",
            GrowRule::NyuMiner {
                max_branches: 3,
                impurity: &Gini,
            },
        ),
        ("cart", GrowRule::Cart),
        ("c45", GrowRule::C45),
    ]
}

#[test]
fn columnar_trees_match_reference_on_benchmark_suite() {
    for name in BENCHES {
        let data = datagen::benchmark(name, 7);
        let rows: Vec<usize> = (0..data.len().min(MAX_ROWS)).collect();
        let index = ColumnarIndex::build(&data);
        for (rule_name, rule) in rules() {
            let reference =
                DecisionTree::grow_reference(&data, &rows, &rule, &GrowConfig::default());
            let columnar =
                DecisionTree::grow_indexed(&data, &index, &rows, &rule, &GrowConfig::default());
            assert_eq!(reference, columnar, "{name}: {rule_name} trees diverge");
        }
    }
}

#[test]
fn columnar_trees_match_reference_on_disjoint_subsets() {
    // CV folds and windowing trials grow over strict subsets of the rows
    // the index was built from; the engine must not assume all-rows.
    let data = datagen::benchmark("german", 7);
    let index = ColumnarIndex::build(&data);
    let evens: Vec<usize> = (0..data.len().min(MAX_ROWS)).step_by(2).collect();
    let odds: Vec<usize> = (1..data.len().min(MAX_ROWS)).step_by(2).collect();
    for rows in [&evens, &odds] {
        for (rule_name, rule) in rules() {
            let reference =
                DecisionTree::grow_reference(&data, rows, &rule, &GrowConfig::default());
            let columnar =
                DecisionTree::grow_indexed(&data, &index, rows, &rule, &GrowConfig::default());
            assert_eq!(reference, columnar, "{rule_name} trees diverge on subset");
        }
    }
}

#[test]
fn columnar_trees_match_reference_under_entropy_and_wide_branching() {
    // The non-default chooser configurations the drivers can request.
    let data = datagen::benchmark("vote", 7);
    let index = ColumnarIndex::build(&data);
    let rows = data.all_rows();
    for max_branches in [2, 4, 6] {
        let rule = GrowRule::NyuMiner {
            max_branches,
            impurity: &Entropy,
        };
        let reference = DecisionTree::grow_reference(&data, &rows, &rule, &GrowConfig::default());
        let columnar =
            DecisionTree::grow_indexed(&data, &index, &rows, &rule, &GrowConfig::default());
        assert_eq!(reference, columnar, "K={max_branches} trees diverge");
    }
}

/// A random small dataset: 1–3 attributes (numeric values drawn from a
/// small pool so duplicate values — shared baskets — are common,
/// categorical from a 3-value domain), 2–3 classes, ~8% missing cells.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    // 0..8 ⇒ numeric from a 8-value pool, 8..11 ⇒ categorical,
    // 11 ⇒ missing (≈8% of cells).
    let cell = (0u8..12).prop_map(|v| match v {
        0..=7 => AttrValue::Num(v as f64 / 2.0),
        8..=10 => AttrValue::Cat((v - 8) as u16),
        _ => AttrValue::Missing,
    });
    (
        prop::collection::vec(prop::collection::vec(cell, 6..28), 1..4),
        2u16..4,
    )
        .prop_map(|(raw_cols, n_classes)| {
            let n_rows = raw_cols.iter().map(|c| c.len()).min().unwrap();
            // Each raw column becomes all-numeric or all-categorical,
            // decided by its first cell (missing ⇒ numeric); cells of the
            // other kind are folded into the column's kind.
            let mut attributes = Vec::new();
            let mut columns = Vec::new();
            for (a, raw) in raw_cols.into_iter().enumerate() {
                let numeric = !matches!(raw[0], AttrValue::Cat(_));
                let col: Vec<AttrValue> = raw
                    .into_iter()
                    .take(n_rows)
                    .map(|v| match (numeric, v) {
                        (_, AttrValue::Missing) => AttrValue::Missing,
                        (true, AttrValue::Cat(c)) => AttrValue::Num(c as f64),
                        (false, AttrValue::Num(x)) => AttrValue::Cat(x as u16 % 3),
                        (_, v) => v,
                    })
                    .collect();
                attributes.push(if numeric {
                    Attribute::Numeric {
                        name: format!("n{a}"),
                    }
                } else {
                    Attribute::Categorical {
                        name: format!("c{a}"),
                        values: vec!["u".into(), "v".into(), "w".into()],
                    }
                });
                columns.push(col);
            }
            // Deterministic but value-dependent class labels, so classes
            // correlate with attributes often enough to produce splits.
            let classes: Vec<u16> = (0..n_rows)
                .map(|r| {
                    let h: usize = columns
                        .iter()
                        .map(|c| match &c[r] {
                            AttrValue::Num(v) => (*v * 2.0) as usize,
                            AttrValue::Cat(v) => *v as usize,
                            AttrValue::Missing => 5,
                        })
                        .sum();
                    (h % n_classes as usize) as u16
                })
                .collect();
            let class_names = (0..n_classes).map(|c| format!("k{c}")).collect();
            Dataset::new(attributes, columns, classes, class_names)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn columnar_choosers_match_brute_path(data in arb_dataset(), k_max in 2usize..5) {
        let index = ColumnarIndex::build(&data);
        let rows = data.all_rows();
        for imp in [&Gini as &dyn Impurity, &Entropy] {
            prop_assert_eq!(
                best_split(&data, &rows, k_max, imp),
                columnar_best_split(&data, &index, &rows, k_max, imp),
                "best_split diverges (k_max {})", k_max
            );
        }
        prop_assert_eq!(
            c45_split(&data, &rows),
            columnar_c45_split(&data, &index, &rows),
            "c45_split diverges"
        );
    }

    #[test]
    fn columnar_trees_match_reference_on_random_data(data in arb_dataset()) {
        let index = ColumnarIndex::build(&data);
        let rows = data.all_rows();
        for (rule_name, rule) in rules() {
            let reference = DecisionTree::grow_reference(&data, &rows, &rule, &GrowConfig::default());
            let columnar = DecisionTree::grow_indexed(&data, &index, &rows, &rule, &GrowConfig::default());
            prop_assert_eq!(&reference, &columnar, "{} trees diverge", rule_name);
        }
    }
}
