//! Property tests of the split machinery and pruning invariants.

use classify::impurity::{Entropy, Gini, Impurity};
use classify::prune::ccp_sequence;
use classify::split::{boundary_collapse, optimal_interval_split, Basket};
use classify::tree::{DecisionTree, GrowConfig, GrowRule};
use classify::{AttrValue, Attribute, Dataset};
use proptest::prelude::*;

fn arb_baskets() -> impl Strategy<Value = Vec<Basket>> {
    prop::collection::vec((0usize..6, 0usize..6), 1..10).prop_map(|counts| {
        counts
            .into_iter()
            .enumerate()
            .filter(|(_, (a, b))| a + b > 0)
            .map(|(i, (a, b))| Basket {
                upper: i as f64,
                counts: vec![a, b],
            })
            .collect::<Vec<_>>()
    })
}

fn brute_best(baskets: &[Basket], k_max: usize, imp: &dyn Impurity) -> f64 {
    let b = baskets.len();
    let mut best = f64::INFINITY;
    for mask in 0u32..(1 << (b - 1)) {
        if (mask.count_ones() as usize) >= k_max {
            continue;
        }
        let mut parts: Vec<Vec<usize>> = Vec::new();
        let mut cur = vec![0usize; 2];
        for (i, bk) in baskets.iter().enumerate() {
            for (c, slot) in cur.iter_mut().enumerate() {
                *slot += bk.counts[c];
            }
            if i + 1 < b && mask & (1 << i) != 0 {
                parts.push(std::mem::replace(&mut cur, vec![0; 2]));
            }
        }
        parts.push(cur);
        best = best.min(imp.aggregate(&parts));
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interval_dp_is_optimal(baskets in arb_baskets(), k_max in 2usize..5) {
        prop_assume!(!baskets.is_empty());
        for imp in [&Gini as &dyn Impurity, &Entropy] {
            let dp = optimal_interval_split(&baskets, k_max, imp).unwrap();
            let brute = brute_best(&baskets, k_max, imp);
            prop_assert!(
                (dp.impurity - brute).abs() < 1e-9,
                "dp {} vs brute {brute}", dp.impurity
            );
            prop_assert!(dp.arity <= k_max.min(baskets.len()));
        }
    }

    #[test]
    fn more_branches_never_hurt(baskets in arb_baskets()) {
        prop_assume!(baskets.len() >= 2);
        let mut prev = f64::INFINITY;
        for k in 2..=baskets.len() {
            let s = optimal_interval_split(&baskets, k, &Gini).unwrap();
            prop_assert!(s.impurity <= prev + 1e-12);
            prev = s.impurity;
        }
    }

    #[test]
    fn boundary_collapse_preserves_class_totals(baskets in arb_baskets()) {
        let total: Vec<usize> = (0..2)
            .map(|c| baskets.iter().map(|b| b.counts[c]).sum())
            .collect();
        let collapsed = boundary_collapse(baskets.clone());
        let after: Vec<usize> = (0..2)
            .map(|c| collapsed.iter().map(|b| b.counts[c]).sum())
            .collect();
        prop_assert_eq!(total, after);
        prop_assert!(collapsed.len() <= baskets.len());
        // Collapse never changes the unlimited-K optimum (Theorem 5).
        if !baskets.is_empty() {
            let full = optimal_interval_split(&baskets, baskets.len(), &Gini).unwrap();
            let coll = optimal_interval_split(&collapsed, collapsed.len(), &Gini).unwrap();
            prop_assert!((full.impurity - coll.impurity).abs() < 1e-9);
        }
    }

    #[test]
    fn impurity_concavity_on_random_histograms(
        a in prop::collection::vec(0usize..20, 2..5),
        b in prop::collection::vec(0usize..20, 2..5),
    ) {
        // Lemma 4 on random pairs: merging two partitions never reduces
        // aggregate impurity.
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        prop_assume!(a.iter().sum::<usize>() > 0 && b.iter().sum::<usize>() > 0);
        let merged: Vec<usize> = a.iter().zip(b).map(|(&x, &y)| x + y).collect();
        for imp in [&Gini as &dyn Impurity, &Entropy] {
            let split = imp.aggregate(&[a.to_vec(), b.to_vec()]);
            let whole = imp.aggregate(std::slice::from_ref(&merged));
            prop_assert!(whole >= split - 1e-12);
        }
    }

    #[test]
    fn grown_trees_partition_training_rows(
        values in prop::collection::vec(0u8..10, 4..40),
        classes in prop::collection::vec(0u16..3, 4..40),
    ) {
        let n = values.len().min(classes.len());
        let data = Dataset::new(
            vec![Attribute::Numeric { name: "x".into() }],
            vec![values[..n].iter().map(|&v| AttrValue::Num(v as f64)).collect()],
            classes[..n].to_vec(),
            vec!["a".into(), "b".into(), "c".into()],
        );
        let tree = DecisionTree::grow(
            &data,
            &data.all_rows(),
            &GrowRule::Cart,
            &GrowConfig::default(),
        );
        // Leaf row counts sum to the training size.
        let leaf_rows: usize = tree
            .subtree_leaves(0)
            .iter()
            .map(|&l| tree.nodes[l].n_rows)
            .sum();
        prop_assert_eq!(leaf_rows, n);
        // Every row lands in a leaf whose class counts include it.
        for r in 0..n {
            let leaf = tree.leaf_of(&data, r);
            prop_assert!(tree.nodes[leaf].is_leaf());
        }
    }

    #[test]
    fn ccp_sequence_invariants(
        values in prop::collection::vec(0u8..8, 8..30),
        classes in prop::collection::vec(0u16..2, 8..30),
    ) {
        let n = values.len().min(classes.len());
        let data = Dataset::new(
            vec![Attribute::Numeric { name: "x".into() }],
            vec![values[..n].iter().map(|&v| AttrValue::Num(v as f64)).collect()],
            classes[..n].to_vec(),
            vec!["a".into(), "b".into()],
        );
        let tree = DecisionTree::grow(
            &data,
            &data.all_rows(),
            &GrowRule::Cart,
            &GrowConfig::default(),
        );
        let seq = ccp_sequence(&tree);
        prop_assert!(!seq.is_empty());
        prop_assert_eq!(seq.last().unwrap().1.leaves(), 1);
        for w in seq.windows(2) {
            prop_assert!(w[0].0 <= w[1].0 + 1e-12, "alphas ascend");
            prop_assert!(w[0].1.leaves() > w[1].1.leaves(), "leaves descend");
            prop_assert!(
                w[0].1.subtree_errors(0) <= w[1].1.subtree_errors(0),
                "training error ascends"
            );
        }
    }
}
