//! NyuMiner (Chapter 5): classification trees by optimal sub-K-ary
//! splits, in its two flavours.
//!
//! * **NyuMiner-CV** (§5.4.1): grow with optimal sub-K-ary splits, prune
//!   by minimal cost complexity with V-fold cross validation — CART's
//!   pruning machinery over NyuMiner's splits.
//! * **NyuMiner-RS** (§5.4.2): *multiple incremental sampling* (the
//!   windowing idea) grows several alternate trees from different initial
//!   samples; **rule selection** then pools every node of every tree as a
//!   candidate classifying rule, filters by confidence/support thresholds
//!   `(Cmin, Smin)`, and classifies by the best matching rule — an
//!   alternative to pruning, and the mechanism behind the foreign-exchange
//!   application of §5.6.

use crate::columnar::ColumnarIndex;
use crate::data::{Classifier, Dataset};
use crate::impurity::{Entropy, Gini, Impurity};
use crate::prune::{grow_with_cv_pruning_indexed, CvPruned};
use crate::split::SplitTest;
use crate::tree::{DecisionTree, GrowConfig, GrowRule};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The impurity functions NyuMiner is run with in the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImpurityKind {
    /// CART's Gini index.
    Gini,
    /// Class entropy.
    Entropy,
}

impl ImpurityKind {
    /// Borrow the corresponding impurity function.
    pub fn as_dyn(&self) -> &'static dyn Impurity {
        match self {
            ImpurityKind::Gini => &Gini,
            ImpurityKind::Entropy => &Entropy,
        }
    }
}

/// NyuMiner configuration.
#[derive(Debug, Clone)]
pub struct NyuConfig {
    /// Maximum branches per split (`K`).
    pub max_branches: usize,
    /// Impurity function.
    pub impurity: ImpurityKind,
    /// Growth floors.
    pub grow: GrowConfig,
}

impl Default for NyuConfig {
    fn default() -> Self {
        NyuConfig {
            // Sub-ternary splits: enough to capture the finer numeric
            // ranges NyuMiner is built for, without the multi-way
            // multiple-comparison bias that hurts attribute selection on
            // noisy data (cf. the dissertation's own §5.5.2 observation
            // that binary splits are very effective in practice).
            max_branches: 3,
            impurity: ImpurityKind::Gini,
            grow: GrowConfig::default(),
        }
    }
}

impl NyuConfig {
    /// The [`GrowRule`] this configuration selects splits with.
    pub fn rule(&self) -> GrowRule<'static> {
        GrowRule::NyuMiner {
            max_branches: self.max_branches,
            impurity: self.impurity.as_dyn(),
        }
    }
}

// ---------------------------------------------------------------------
// NyuMiner-CV.
// ---------------------------------------------------------------------

/// NyuMiner with minimal cost-complexity pruning under V-fold cross
/// validation.
pub struct NyuMinerCV {
    /// The pruned tree.
    pub tree: DecisionTree,
    /// Selected complexity parameter.
    pub alpha: f64,
}

impl NyuMinerCV {
    /// Train on `rows` with `v`-fold CV pruning (`v = 0` skips pruning —
    /// the Table 6.1 baseline).
    pub fn fit(data: &Dataset, rows: &[usize], config: &NyuConfig, v: usize, seed: u64) -> Self {
        let index = ColumnarIndex::build(data);
        Self::fit_indexed(data, &index, rows, config, v, seed)
    }

    /// [`NyuMinerCV::fit`] over a prebuilt [`ColumnarIndex`]: the main
    /// and fold trees share the dataset's presorted columns.
    pub fn fit_indexed(
        data: &Dataset,
        index: &ColumnarIndex,
        rows: &[usize],
        config: &NyuConfig,
        v: usize,
        seed: u64,
    ) -> Self {
        let CvPruned { tree, alpha, .. } =
            grow_with_cv_pruning_indexed(data, index, rows, &config.rule(), &config.grow, v, seed);
        NyuMinerCV { tree, alpha }
    }
}

impl Classifier for NyuMinerCV {
    fn predict(&self, data: &Dataset, row: usize) -> u16 {
        self.tree.predict(data, row)
    }
}

// ---------------------------------------------------------------------
// Rules and rule selection.
// ---------------------------------------------------------------------

/// A classifying rule: the conjunction of branch conditions on the path
/// from a tree's root to one of its nodes (§5.4.2).
#[derive(Debug, Clone)]
pub struct Rule {
    /// `(test, branch)` conditions, root-most first.
    pub conditions: Vec<(SplitTest, usize)>,
    /// Decision class (the node's majority class).
    pub class: u16,
    /// Fraction of the node's rows in the majority class.
    pub confidence: f64,
    /// Fraction of training rows reaching the node.
    pub support: f64,
}

impl Rule {
    /// Does `row` satisfy every condition? Missing values fail a
    /// condition (the rule does not apply).
    pub fn matches(&self, data: &Dataset, row: usize) -> bool {
        self.conditions
            .iter()
            .all(|(test, branch)| test.branch(data, row) == Some(*branch))
    }

    /// The §5.4.2 partial order: `r > r'` iff both confidence and support
    /// are strictly greater.
    pub fn dominates(&self, other: &Rule) -> bool {
        self.confidence > other.confidence && self.support > other.support
    }
}

/// An ordered classifying rule list with a default class.
pub struct RuleList {
    rules: Vec<Rule>,
    default_class: u16,
}

impl RuleList {
    /// Build from candidate rules: filter by `(cmin, smin)`, sort
    /// descending by (confidence, support) — a linearisation of the
    /// partial order of Definition 9.
    pub fn select(mut candidates: Vec<Rule>, cmin: f64, smin: f64, default_class: u16) -> Self {
        candidates.retain(|r| r.confidence >= cmin && r.support >= smin);
        candidates.sort_by(|a, b| {
            b.confidence
                .total_cmp(&a.confidence)
                .then(b.support.total_cmp(&a.support))
        });
        RuleList {
            rules: candidates,
            default_class,
        }
    }

    /// The selected rules, highest first.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Classify by the first (= highest-ordered, then most confident)
    /// matching rule; `None` when no rule applies (the non-decisive case
    /// the FX application relies on).
    pub fn decide(&self, data: &Dataset, row: usize) -> Option<u16> {
        self.rules
            .iter()
            .find(|r| r.matches(data, row))
            .map(|r| r.class)
    }
}

impl Classifier for RuleList {
    fn predict(&self, data: &Dataset, row: usize) -> u16 {
        self.decide(data, row).unwrap_or(self.default_class)
    }
}

/// Every node of `tree` as a candidate rule (the root — the plurality
/// rule — is excluded; `Cmin` should exceed its confidence anyway).
pub fn extract_rules(tree: &DecisionTree, n_train: usize) -> Vec<Rule> {
    let mut out = Vec::new();
    // DFS carrying the path conditions.
    let mut stack: Vec<(usize, Vec<(SplitTest, usize)>)> = vec![(0, Vec::new())];
    while let Some((id, conds)) = stack.pop() {
        let node = &tree.nodes[id];
        if !conds.is_empty() {
            let n = node.n_rows;
            out.push(Rule {
                conditions: conds.clone(),
                class: node.majority,
                confidence: if n == 0 {
                    0.0
                } else {
                    node.class_counts[node.majority as usize] as f64 / n as f64
                },
                support: n as f64 / n_train as f64,
            });
        }
        if let Some((test, children)) = &node.split {
            for (branch, &c) in children.iter().enumerate() {
                let mut next = conds.clone();
                next.push((test.clone(), branch));
                stack.push((c, next));
            }
        }
    }
    out
}

/// Re-estimate every candidate rule's statistics against `rows` of
/// `data`: decision class, confidence, and support are recomputed from
/// the full training set instead of the (possibly small) sampling window
/// the rule's tree was grown on. Incremental-sampling windows are biased
/// toward "difficult" cases, so window-relative confidences overstate;
/// the rule list the paper trades on is only as good as these estimates.
pub fn reevaluate_rules(data: &Dataset, rows: &[usize], rules: &mut [Rule]) {
    for rule in rules {
        let mut counts = vec![0usize; data.n_classes()];
        let mut n = 0usize;
        for &r in rows {
            if rule.matches(data, r) {
                counts[data.class(r) as usize] += 1;
                n += 1;
            }
        }
        if n == 0 {
            rule.confidence = 0.0;
            rule.support = 0.0;
            continue;
        }
        let (majority, count) = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(c, &k)| (c as u16, k))
            .unwrap();
        rule.class = majority;
        rule.confidence = count as f64 / n as f64;
        rule.support = n as f64 / rows.len() as f64;
    }
}

// ---------------------------------------------------------------------
// NyuMiner-RS.
// ---------------------------------------------------------------------

/// Multiple incremental sampling + rule selection.
pub struct NyuMinerRS {
    /// The selected rule list.
    pub rules: RuleList,
    /// The alternate trees the rules came from.
    pub trees: Vec<DecisionTree>,
}

/// Grow one tree by multiple incremental sampling (§5.4.2): start from a
/// random subset, repeatedly add a selection of misclassified remaining
/// elements, rebuild, until the remainder is classified correctly or
/// exhausted.
pub fn grow_incremental(
    data: &Dataset,
    rows: &[usize],
    config: &NyuConfig,
    seed: u64,
) -> DecisionTree {
    let index = ColumnarIndex::build(data);
    grow_incremental_indexed(data, &index, rows, config, seed)
}

/// [`grow_incremental`] over a prebuilt [`ColumnarIndex`]: every rebuild
/// grows from the same presorted columns.
pub fn grow_incremental_indexed(
    data: &Dataset,
    index: &ColumnarIndex,
    rows: &[usize],
    config: &NyuConfig,
    seed: u64,
) -> DecisionTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shuffled = rows.to_vec();
    shuffled.shuffle(&mut rng);
    let n = rows.len();
    let init = ((n as f64 * 0.2) as usize).max(1).min(n);
    let mut window: Vec<usize> = shuffled[..init].to_vec();
    let mut outside: Vec<usize> = shuffled[init..].to_vec();
    loop {
        let tree = DecisionTree::grow_indexed(data, index, &window, &config.rule(), &config.grow);
        let misclassified: Vec<usize> = outside
            .iter()
            .copied()
            .filter(|&r| tree.predict(data, r) != data.class(r))
            .collect();
        if misclassified.is_empty() {
            return tree;
        }
        let take = misclassified.len().min((window.len() / 2).max(1));
        let added: Vec<usize> = misclassified[..take].to_vec();
        window.extend(added.iter().copied());
        outside.retain(|r| !added.contains(r));
    }
}

impl NyuMinerRS {
    /// Train with `trials` incremental-sampling trees and rule thresholds
    /// `(cmin, smin)`.
    pub fn fit(
        data: &Dataset,
        rows: &[usize],
        config: &NyuConfig,
        trials: usize,
        cmin: f64,
        smin: f64,
        seed: u64,
    ) -> Self {
        let index = ColumnarIndex::build(data);
        Self::fit_indexed(data, &index, rows, config, trials, cmin, smin, seed)
    }

    /// [`NyuMinerRS::fit`] over a prebuilt [`ColumnarIndex`]: all trials
    /// share the dataset's presorted columns.
    #[allow(clippy::too_many_arguments)]
    pub fn fit_indexed(
        data: &Dataset,
        index: &ColumnarIndex,
        rows: &[usize],
        config: &NyuConfig,
        trials: usize,
        cmin: f64,
        smin: f64,
        seed: u64,
    ) -> Self {
        assert!(trials >= 1);
        let mut trees = Vec::with_capacity(trials);
        let mut candidates = Vec::new();
        for t in 0..trials {
            let tree = grow_incremental_indexed(
                data,
                index,
                rows,
                config,
                seed.wrapping_add(t as u64 * 7919),
            );
            candidates.extend(extract_rules(&tree, rows.len()));
            trees.push(tree);
        }
        reevaluate_rules(data, rows, &mut candidates);
        let (default_class, _) = data.plurality(rows);
        NyuMinerRS {
            rules: RuleList::select(candidates, cmin, smin, default_class),
            trees,
        }
    }
}

impl Classifier for NyuMinerRS {
    fn predict(&self, data: &Dataset, row: usize) -> u16 {
        self.rules.predict(data, row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::fixtures::heart;

    #[test]
    fn cv_flavour_trains_and_predicts() {
        let d = heart();
        let m = NyuMinerCV::fit(&d, &d.all_rows(), &NyuConfig::default(), 3, 5);
        assert!(m.tree.leaves() >= 1);
        // Predictions are valid classes.
        for r in d.all_rows() {
            assert!(m.predict(&d, r) < 2);
        }
    }

    #[test]
    fn rules_extracted_from_every_non_root_node() {
        let d = heart();
        let t = DecisionTree::grow(
            &d,
            &d.all_rows(),
            &NyuConfig::default().rule(),
            &GrowConfig::default(),
        );
        let rules = extract_rules(&t, d.len());
        assert_eq!(rules.len(), t.size() - 1);
        for r in &rules {
            assert!(r.confidence > 0.0 && r.confidence <= 1.0);
            assert!(r.support > 0.0 && r.support <= 1.0);
        }
    }

    #[test]
    fn rule_matching_follows_tree_paths() {
        let d = heart();
        let t = DecisionTree::grow(
            &d,
            &d.all_rows(),
            &NyuConfig::default().rule(),
            &GrowConfig::default(),
        );
        let rules = extract_rules(&t, d.len());
        // Every training row matches at least one leaf rule predicting its
        // class (the tree fits this table exactly).
        for row in d.all_rows() {
            assert!(
                rules
                    .iter()
                    .any(|r| r.matches(&d, row) && r.class == d.class(row)),
                "row {row}"
            );
        }
    }

    #[test]
    fn partial_order_dominance() {
        let mk = |c: f64, s: f64| Rule {
            conditions: Vec::new(),
            class: 0,
            confidence: c,
            support: s,
        };
        assert!(mk(0.9, 0.5).dominates(&mk(0.8, 0.4)));
        assert!(!mk(0.9, 0.3).dominates(&mk(0.8, 0.4)));
        assert!(!mk(0.8, 0.4).dominates(&mk(0.8, 0.4)));
    }

    #[test]
    fn selection_filters_and_sorts() {
        let mk = |c: f64, s: f64| Rule {
            conditions: Vec::new(),
            class: 0,
            confidence: c,
            support: s,
        };
        let list = RuleList::select(
            vec![mk(0.7, 0.2), mk(0.9, 0.05), mk(0.95, 0.5), mk(0.4, 0.9)],
            0.6,
            0.1,
            1,
        );
        let confs: Vec<f64> = list.rules().iter().map(|r| r.confidence).collect();
        assert_eq!(confs, vec![0.95, 0.7]);
    }

    #[test]
    fn rs_flavour_fits_heart_table() {
        let d = heart();
        let m = NyuMinerRS::fit(&d, &d.all_rows(), &NyuConfig::default(), 3, 0.5, 0.01, 2);
        assert!(!m.trees.is_empty());
        assert!(m.accuracy(&d, &d.all_rows()) >= 0.8);
    }

    #[test]
    fn strict_thresholds_make_rules_non_decisive() {
        let d = heart();
        let m = NyuMinerRS::fit(&d, &d.all_rows(), &NyuConfig::default(), 2, 1.01, 0.9, 3);
        // Impossible confidence bound: no rules survive; decide is None.
        assert!(m.rules.rules().is_empty());
        assert_eq!(m.rules.decide(&d, 0), None);
        // But predict falls back to the plurality class.
        let (plur, _) = d.plurality(&d.all_rows());
        assert_eq!(m.predict(&d, 0), plur);
    }
}
