//! Minimal cost-complexity pruning with V-fold cross validation (§5.4.1).
//!
//! Growing to purity overfits; CART's remedy — adopted by NyuMiner-CV —
//! defines the cost complexity `R_α(T) = R(T) + α·|~T|` and shows the
//! minimising subtrees form a nested sequence `T1 > T2 > … > {root}`
//! produced by repeatedly pruning the **weakest link**: the internal node
//! `t` minimising `g(t) = (R(t) − R(T_t)) / (|~T_t| − 1)`. V-fold cross
//! validation then estimates each `T_k`'s true error using auxiliary
//! trees grown on the folds, evaluated at the geometric midpoints
//! `α'_k = √(α_k·α_{k+1})`, and the best `T_k` is selected.

use crate::columnar::ColumnarIndex;
use crate::data::{Classifier, Dataset};
use crate::tree::{DecisionTree, GrowConfig, GrowRule};
use std::collections::HashSet;

/// A cost-complexity pruning sequence: `(alpha, pruned tree)` pairs in
/// increasing order of alpha (decreasing tree size).
pub type PruneSequence = Vec<(f64, DecisionTree)>;

/// Rebuild `tree` with every node in `prune_at` converted to a leaf,
/// dropping unreachable arena entries.
fn materialise(tree: &DecisionTree, prune_at: &HashSet<usize>) -> DecisionTree {
    let mut out = DecisionTree {
        nodes: Vec::new(),
        n_train: tree.n_train,
    };
    // (old id, new parent slot) — rebuild preorder.
    fn copy(
        tree: &DecisionTree,
        prune_at: &HashSet<usize>,
        old: usize,
        out: &mut DecisionTree,
    ) -> usize {
        let mut node = tree.nodes[old].clone();
        let id = out.nodes.len();
        let split = node.split.take();
        out.nodes.push(node);
        if !prune_at.contains(&old) {
            if let Some((test, children)) = split {
                let new_children: Vec<usize> = children
                    .iter()
                    .map(|&c| copy(tree, prune_at, c, out))
                    .collect();
                out.nodes[id].split = Some((test, new_children));
            }
        }
        id
    }
    copy(tree, prune_at, 0, &mut out);
    out
}

/// The nested pruning sequence: `(α_k, T_k)` pairs with `α_1 = 0` and the
/// final entry the root-only tree. `T_k` minimises `R_α` for
/// `α ∈ [α_k, α_{k+1})`.
pub fn ccp_sequence(tree: &DecisionTree) -> PruneSequence {
    let mut pruned: HashSet<usize> = HashSet::new();
    let mut seq: PruneSequence = Vec::new();

    // Effective leaves/errors of the overlay subtree at `id`.
    fn stats(tree: &DecisionTree, pruned: &HashSet<usize>, id: usize) -> (usize, usize) {
        // (leaves, errors)
        if pruned.contains(&id) || tree.nodes[id].is_leaf() {
            return (1, tree.nodes[id].errors());
        }
        let (_, children) = tree.nodes[id].split.as_ref().unwrap();
        let mut leaves = 0;
        let mut errors = 0;
        for &c in children {
            let (l, e) = stats(tree, pruned, c);
            leaves += l;
            errors += e;
        }
        (leaves, errors)
    }

    // Internal (unpruned) nodes of the overlay.
    fn internal(tree: &DecisionTree, pruned: &HashSet<usize>) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![0usize];
        while let Some(id) = stack.pop() {
            if pruned.contains(&id) || tree.nodes[id].is_leaf() {
                continue;
            }
            out.push(id);
            let (_, children) = tree.nodes[id].split.as_ref().unwrap();
            stack.extend(children.iter().copied());
        }
        out
    }

    // T1: prune every subtree that does not reduce training error
    // (g(t) = 0 links) — folded into the main loop since α starts at 0.
    let mut alpha = 0.0f64;
    loop {
        seq.push((alpha, materialise(tree, &pruned)));
        let nodes = internal(tree, &pruned);
        if nodes.is_empty() {
            break;
        }
        // Weakest links.
        let mut min_g = f64::INFINITY;
        let mut weakest: Vec<usize> = Vec::new();
        for &t in &nodes {
            let (leaves, errors) = stats(tree, &pruned, t);
            debug_assert!(leaves >= 2);
            let g = (tree.nodes[t].errors() as f64 - errors as f64) / (leaves as f64 - 1.0);
            if g < min_g - 1e-12 {
                min_g = g;
                weakest = vec![t];
            } else if g < min_g + 1e-12 {
                weakest.push(t);
            }
        }
        for t in weakest {
            pruned.insert(t);
        }
        alpha = min_g.max(alpha);
        // Collapse equal-α steps: replace the last snapshot if α repeats.
        if let Some((last_alpha, _)) = seq.last() {
            if (alpha - last_alpha).abs() < 1e-12 {
                seq.pop();
            }
        }
    }
    seq
}

/// The subtree of a pruning sequence in force at complexity `alpha`: the
/// entry with the largest `α_k ≤ alpha`.
pub fn select_for_alpha(seq: &[(f64, DecisionTree)], alpha: f64) -> &DecisionTree {
    let mut best = &seq[0].1;
    for (a, t) in seq {
        if *a <= alpha + 1e-15 {
            best = t;
        } else {
            break;
        }
    }
    best
}

/// Outcome of [`grow_with_cv_pruning`].
pub struct CvPruned {
    /// The selected pruned tree.
    pub tree: DecisionTree,
    /// The α at which it was selected.
    pub alpha: f64,
    /// Cross-validation error estimate of each sequence entry.
    pub cv_errors: Vec<(f64, f64)>,
}

/// Grow a tree and prune it by minimal cost complexity with `v`-fold
/// cross validation (the full CART/NyuMiner-CV procedure). With `v == 0`
/// no pruning is performed (the `V = 0` rows of Table 6.1).
pub fn grow_with_cv_pruning(
    data: &Dataset,
    rows: &[usize],
    rule: &GrowRule,
    config: &GrowConfig,
    v: usize,
    seed: u64,
) -> CvPruned {
    let index = ColumnarIndex::build(data);
    grow_with_cv_pruning_indexed(data, &index, rows, rule, config, v, seed)
}

/// [`grow_with_cv_pruning`] over a prebuilt [`ColumnarIndex`]: the main
/// tree and all `v` fold trees share the dataset's presorted columns, so
/// the per-fold ingest cost disappears.
pub fn grow_with_cv_pruning_indexed(
    data: &Dataset,
    index: &ColumnarIndex,
    rows: &[usize],
    rule: &GrowRule,
    config: &GrowConfig,
    v: usize,
    seed: u64,
) -> CvPruned {
    let main = DecisionTree::grow_indexed(data, index, rows, rule, config);
    if v == 0 {
        return CvPruned {
            tree: main,
            alpha: 0.0,
            cv_errors: Vec::new(),
        };
    }
    let seq = ccp_sequence(&main);
    if seq.len() == 1 {
        let (alpha, tree) = seq.into_iter().next().unwrap();
        return CvPruned {
            tree,
            alpha,
            cv_errors: Vec::new(),
        };
    }

    // Auxiliary trees per fold, with their own pruning sequences.
    let folds = data.folds(rows, v, seed);
    let mut aux: Vec<(Vec<usize>, PruneSequence)> = Vec::with_capacity(v);
    for i in 0..v {
        let test_fold = &folds[i];
        let train: Vec<usize> = folds
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .flat_map(|(_, f)| f.iter().copied())
            .collect();
        let t = DecisionTree::grow_indexed(data, index, &train, rule, config);
        aux.push((test_fold.clone(), ccp_sequence(&t)));
    }

    // Evaluate each main-sequence entry at the geometric midpoint of its
    // α interval.
    let n: usize = rows.len();
    let mut cv_errors: Vec<(f64, f64)> = Vec::with_capacity(seq.len());
    for k in 0..seq.len() {
        let alpha_k = seq[k].0;
        let alpha_mid = if k + 1 < seq.len() {
            let next = seq[k + 1].0;
            if alpha_k > 0.0 {
                (alpha_k * next).sqrt()
            } else {
                next / 2.0
            }
        } else {
            f64::INFINITY
        };
        let mut errors = 0usize;
        for (test_fold, aux_seq) in &aux {
            let t = select_for_alpha(aux_seq, alpha_mid);
            for &r in test_fold {
                if t.predict(data, r) != data.class(r) {
                    errors += 1;
                }
            }
        }
        cv_errors.push((alpha_k, errors as f64 / n as f64));
    }

    // Select the minimiser (ties to the simpler/larger-α tree).
    let mut best_k = 0;
    for k in 1..cv_errors.len() {
        if cv_errors[k].1 <= cv_errors[best_k].1 + 1e-12 {
            best_k = k;
        }
    }
    CvPruned {
        alpha: seq[best_k].0,
        tree: seq[best_k].1.clone(),
        cv_errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::fixtures::heart;
    use crate::impurity::Gini;

    fn grown() -> (Dataset, DecisionTree) {
        let d = heart();
        let t = DecisionTree::grow(
            &d,
            &d.all_rows(),
            &GrowRule::NyuMiner {
                max_branches: 3,
                impurity: &Gini,
            },
            &GrowConfig::default(),
        );
        (d, t)
    }

    #[test]
    fn sequence_is_nested_and_ends_at_root() {
        let (_, t) = grown();
        let seq = ccp_sequence(&t);
        assert!(seq.len() >= 2);
        assert_eq!(seq[0].0, 0.0);
        // Strictly decreasing leaf counts, strictly increasing alphas.
        for w in seq.windows(2) {
            assert!(w[0].1.leaves() > w[1].1.leaves());
            assert!(w[0].0 <= w[1].0 + 1e-12);
        }
        assert_eq!(seq.last().unwrap().1.leaves(), 1);
    }

    #[test]
    fn sequence_errors_monotone_nondecreasing() {
        let (_, t) = grown();
        let seq = ccp_sequence(&t);
        for w in seq.windows(2) {
            assert!(w[0].1.subtree_errors(0) <= w[1].1.subtree_errors(0));
        }
    }

    #[test]
    fn each_entry_minimises_cost_complexity_locally() {
        // For α between α_k and α_{k+1}, T_k's cost complexity must not
        // exceed its neighbours'.
        let (_, t) = grown();
        let seq = ccp_sequence(&t);
        for k in 0..seq.len() - 1 {
            let alpha = (seq[k].0 + seq[k + 1].0) / 2.0;
            let cost = |tr: &DecisionTree| tr.subtree_errors(0) as f64 + alpha * tr.leaves() as f64;
            for other in &seq {
                assert!(
                    cost(&seq[k].1) <= cost(&other.1) + 1e-9,
                    "entry {k} at alpha {alpha}"
                );
            }
        }
    }

    #[test]
    fn select_for_alpha_picks_interval() {
        let (_, t) = grown();
        let seq = ccp_sequence(&t);
        assert_eq!(select_for_alpha(&seq, 0.0).leaves(), seq[0].1.leaves());
        assert_eq!(select_for_alpha(&seq, f64::INFINITY).leaves(), 1);
    }

    #[test]
    fn materialise_drops_unreachable_nodes() {
        let (_, t) = grown();
        let all = materialise(&t, &HashSet::new());
        assert_eq!(all.size(), t.size());
        let rooted: HashSet<usize> = [0].into_iter().collect();
        let stump = materialise(&t, &rooted);
        assert_eq!(stump.size(), 1);
        assert!(stump.nodes[0].is_leaf());
    }

    #[test]
    fn cv_pruning_returns_valid_tree() {
        let d = heart();
        let pruned = grow_with_cv_pruning(
            &d,
            &d.all_rows(),
            &GrowRule::Cart,
            &GrowConfig::default(),
            3,
            11,
        );
        assert!(pruned.tree.leaves() >= 1);
        assert!(!pruned.cv_errors.is_empty());
        // All reported alphas come from the main sequence.
        let seq = ccp_sequence(&DecisionTree::grow(
            &d,
            &d.all_rows(),
            &GrowRule::Cart,
            &GrowConfig::default(),
        ));
        assert_eq!(pruned.cv_errors.len(), seq.len());
    }

    #[test]
    fn v_zero_skips_pruning() {
        let d = heart();
        let unpruned = grow_with_cv_pruning(
            &d,
            &d.all_rows(),
            &GrowRule::Cart,
            &GrowConfig::default(),
            0,
            1,
        );
        let full = DecisionTree::grow(&d, &d.all_rows(), &GrowRule::Cart, &GrowConfig::default());
        assert_eq!(unpruned.tree.size(), full.size());
    }
}
