//! Making money in foreign exchange (§5.6): the NyuMiner-RS application.
//!
//! From a daily exchange-rate series, ten derived percentage-change
//! features predict tomorrow's movement. Trees overfit badly here (49–52%
//! accuracy, §5.6.2), but traders don't trade every day: **rule
//! selection** keeps only the rare rules with confidence ≥ `Cmin` and
//! support ≥ `Smin`, trades only on covered days, and wins.

use crate::data::{AttrValue, Attribute, Dataset};
use crate::nyuminer::{NyuConfig, NyuMinerRS};

/// Trading-day horizon constants (§5.6.1's feature definitions).
const WEEK: usize = 5;
const MONTH: usize = 21;
const SIX_MONTHS: usize = 126;
const YEAR: usize = 252;

/// The ten §5.6.1 feature names, in dataset column order.
pub const FEATURE_NAMES: [&str; 10] = [
    "one",
    "two",
    "three",
    "four",
    "five",
    "average",
    "weighted",
    "month",
    "six-month",
    "year",
];

/// Feature table built from a rate series; `day_of_row[i]` is the index
/// into the original series of row `i`'s "today".
pub struct ForexData {
    /// The feature dataset (classes: 0 = down, 1 = up).
    pub data: Dataset,
    /// Rate-series day per row.
    pub day_of_row: Vec<usize>,
}

fn pct(now: f64, then: f64) -> f64 {
    (now - then) / then * 100.0
}

/// Build the §5.6.1 dataset from a daily rate series (needs more than a
/// year of history plus one day of look-ahead per row).
pub fn build_features(rates: &[f64]) -> ForexData {
    assert!(
        rates.len() > YEAR + 2,
        "need more than a year of rates, got {}",
        rates.len()
    );
    let mut columns: Vec<Vec<AttrValue>> = vec![Vec::new(); 10];
    let mut classes = Vec::new();
    let mut day_of_row = Vec::new();
    for d in YEAR..rates.len() - 1 {
        let r = rates[d];
        let daily: Vec<f64> = (0..WEEK)
            .map(|k| pct(rates[d - k], rates[d - k - 1]))
            .collect();
        let features = [
            pct(r, rates[d - 1]),
            pct(r, rates[d - 2]),
            pct(r, rates[d - 3]),
            pct(r, rates[d - 4]),
            pct(r, rates[d - 5]),
            daily.iter().sum::<f64>() / WEEK as f64,
            daily
                .iter()
                .enumerate()
                .map(|(k, v)| (WEEK - k) as f64 * v)
                .sum::<f64>()
                / (1..=WEEK).sum::<usize>() as f64,
            pct(r, rates[d - MONTH]),
            pct(r, rates[d - SIX_MONTHS]),
            pct(r, rates[d - YEAR]),
        ];
        for (c, f) in features.into_iter().enumerate() {
            columns[c].push(AttrValue::Num(f));
        }
        classes.push(u16::from(rates[d + 1] > r));
        day_of_row.push(d);
    }
    let attributes = FEATURE_NAMES
        .iter()
        .map(|n| Attribute::Numeric {
            name: (*n).to_string(),
        })
        .collect();
    ForexData {
        data: Dataset::new(
            attributes,
            columns,
            classes,
            vec!["down".into(), "up".into()],
        ),
        day_of_row,
    }
}

/// Outcome of the §5.6.3 trading simulation.
#[derive(Debug, Clone)]
pub struct TradingOutcome {
    /// Days on which the rules decided (and we traded).
    pub days_covered: usize,
    /// Correct movement predictions among covered days.
    pub correct: usize,
    /// Accuracy on the covered days.
    pub accuracy: f64,
    /// Final wealth starting from 1000 units of the first currency.
    pub first_currency: f64,
    /// Final wealth starting from 1000 units of the second currency.
    pub second_currency: f64,
    /// Percentage gains.
    pub gain_first: f64,
    /// Percentage gain of the second-currency run.
    pub gain_second: f64,
}

impl TradingOutcome {
    /// Mean of the two runs' percentage gains (the Table 5.6 "Average").
    pub fn average_gain(&self) -> f64 {
        (self.gain_first + self.gain_second) / 2.0
    }
}

/// Simulate the simplest strategy of §5.6.3. `rates[d]` is units of the
/// second currency per unit of the first; `decisions` maps a rate day to
/// the predicted movement of tomorrow's rate (1 = up).
///
/// Holding the *first* currency, a predicted **down** day is advantageous
/// (convert to the second currency today, back tomorrow at a better
/// rate); holding the *second*, a predicted **up** day is.
pub fn trade(rates: &[f64], decisions: &[(usize, u16)]) -> TradingOutcome {
    let mut first = 1000.0f64;
    let mut second = 1000.0f64;
    let mut correct = 0usize;
    for &(day, dir) in decisions {
        assert!(day + 1 < rates.len(), "decision beyond the series");
        let (today, tomorrow) = (rates[day], rates[day + 1]);
        let actually_up = tomorrow > today;
        if (dir == 1) == actually_up {
            correct += 1;
        }
        if dir == 0 {
            // Rate falls: first currency strengthens; round-trip through
            // the second currency multiplies first-holdings by r_t/r_{t+1}.
            first *= today / tomorrow;
        } else {
            second *= tomorrow / today;
        }
    }
    let n = decisions.len();
    TradingOutcome {
        days_covered: n,
        correct,
        accuracy: correct as f64 / n.max(1) as f64,
        first_currency: first,
        second_currency: second,
        gain_first: (first - 1000.0) / 10.0,
        gain_second: (second - 1000.0) / 10.0,
    }
}

/// Full §5.6 pipeline result.
pub struct ForexRun {
    /// Number of rules selected.
    pub rules_selected: usize,
    /// Train-half accuracy of plain (threshold-free) classification on
    /// the test half — the "poor job" baseline of §5.6.2.
    pub plain_accuracy: f64,
    /// The trading simulation on the covered test days.
    pub outcome: TradingOutcome,
}

/// Run the complete pipeline on a rate series: features, time split
/// (first half trains, second half tests), NyuMiner-RS rule selection
/// with `(cmin, smin)`, out-of-sample trading.
pub fn run_forex(
    rates: &[f64],
    config: &NyuConfig,
    trials: usize,
    cmin: f64,
    smin: f64,
    seed: u64,
) -> ForexRun {
    let fx = build_features(rates);
    let n = fx.data.len();
    let train: Vec<usize> = (0..n / 2).collect();
    let test: Vec<usize> = (n / 2..n).collect();

    let model = NyuMinerRS::fit(&fx.data, &train, config, trials, cmin, smin, seed);
    use crate::data::Classifier;
    let plain_accuracy = model.accuracy(&fx.data, &test);

    let mut decisions = Vec::new();
    for &row in &test {
        if let Some(dir) = model.rules.decide(&fx.data, row) {
            decisions.push((fx.day_of_row[row], dir));
        }
    }
    ForexRun {
        rules_selected: model.rules.rules().len(),
        plain_accuracy,
        outcome: trade(rates, &decisions),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic synthetic rate series with a weak exploitable
    /// regime (mean reversion after 5 down days).
    fn synthetic_rates(n: usize) -> Vec<f64> {
        let mut rates = vec![100.0f64];
        let mut state = 0x5eed_u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut down_run = 0;
        for _ in 1..n {
            let last = *rates.last().unwrap();
            let drift = if down_run >= 3 { 0.004 } else { 0.0 };
            let step = rnd() * 0.01 + drift;
            let next = (last * (1.0 + step)).max(1.0);
            down_run = if next < last { down_run + 1 } else { 0 };
            rates.push(next);
        }
        rates
    }

    #[test]
    fn features_have_expected_shape() {
        let rates = synthetic_rates(400);
        let fx = build_features(&rates);
        assert_eq!(fx.data.n_attributes(), 10);
        assert_eq!(fx.data.len(), 400 - YEAR - 1);
        assert_eq!(fx.day_of_row.len(), fx.data.len());
        assert_eq!(fx.day_of_row[0], YEAR);
        // Feature "one" of row 0 is the day-252 vs day-251 change.
        let AttrValue::Num(one) = fx.data.value(0, 0) else {
            panic!()
        };
        assert!((one - pct(rates[YEAR], rates[YEAR - 1])).abs() < 1e-9);
    }

    #[test]
    fn class_is_next_day_movement() {
        let rates = synthetic_rates(300);
        let fx = build_features(&rates);
        for i in 0..fx.data.len() {
            let d = fx.day_of_row[i];
            assert_eq!(fx.data.class(i) == 1, rates[d + 1] > rates[d], "row {i}");
        }
    }

    #[test]
    fn perfect_predictions_always_profit() {
        let rates = synthetic_rates(320);
        // Oracle decisions on the last 30 tradable days.
        let decisions: Vec<(usize, u16)> = (280..310)
            .map(|d| (d, u16::from(rates[d + 1] > rates[d])))
            .collect();
        let out = trade(&rates, &decisions);
        assert_eq!(out.accuracy, 1.0);
        assert!(out.first_currency >= 1000.0);
        assert!(out.second_currency >= 1000.0);
        assert!(out.average_gain() > 0.0);
    }

    #[test]
    fn inverted_predictions_always_lose() {
        let rates = synthetic_rates(320);
        let decisions: Vec<(usize, u16)> = (280..310)
            .map(|d| (d, u16::from(rates[d + 1] <= rates[d])))
            .collect();
        let out = trade(&rates, &decisions);
        assert_eq!(out.accuracy, 0.0);
        assert!(out.first_currency <= 1000.0);
        assert!(out.second_currency <= 1000.0);
    }

    #[test]
    fn pipeline_runs_end_to_end() {
        let rates = synthetic_rates(700);
        let run = run_forex(&rates, &NyuConfig::default(), 2, 0.6, 0.01, 9);
        // Sanity, not profitability (the series is mostly noise).
        assert!(run.plain_accuracy > 0.2);
        assert!(run.outcome.days_covered <= 700);
    }
}
