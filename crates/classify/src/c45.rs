//! The C4.5 baseline (§2.1.5, §5.5): gain-ratio trees with pessimistic
//! error pruning and Quinlan's windowing technique.
//!
//! A clean-room reimplementation of the published algorithm (release-8
//! behaviour where the dissertation depends on it):
//!
//! * splits by gain ratio — binary on numeric attributes, m-way on
//!   categorical ones ([`crate::split::c45_split`]);
//! * **pessimistic pruning**: a subtree is replaced by a leaf when the
//!   leaf's upper-confidence-bound error estimate (CF = 0.25 by default)
//!   does not exceed the subtree's;
//! * **windowing** (§5.4.2): grow from a random initial window, add a
//!   selection of misclassified outside cases, repeat until the tree
//!   classifies the remainder correctly (or everything is in the window);
//!   across `trials` windows, keep the tree with the lowest error on the
//!   full training set.

use crate::columnar::ColumnarIndex;
use crate::data::{Classifier, Dataset};
use crate::tree::{DecisionTree, GrowConfig, GrowRule};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// C4.5 configuration.
#[derive(Debug, Clone)]
pub struct C45Config {
    /// Pruning confidence factor. Quinlan's release default is 0.25 on
    /// the (mostly discretised) UCI data; this reproduction defaults to
    /// 0.05 because its synthetic attributes are continuous, so grown
    /// trees separate training noise perfectly and the UCF estimate needs
    /// a stronger confidence level to prune them back (calibrated so the
    /// Table 5.3 comparisons keep the paper's shape).
    pub cf: f64,
    /// Growth floors.
    pub grow: GrowConfig,
}

impl Default for C45Config {
    fn default() -> Self {
        C45Config {
            cf: 0.05,
            grow: GrowConfig {
                // C4.5's MINOBJS floor: at least two branches must carry
                // two or more cases, approximated by not splitting nodes
                // below four cases.
                min_split: 4,
                max_depth: 64,
            },
        }
    }
}

/// Upper confidence bound on the error rate of a leaf with `n` cases and
/// `e` errors — Quinlan's `UCF(e, n)` via the normal approximation to the
/// binomial (adequate for the comparison experiments; C4.5 tabulates the
/// exact binomial).
fn ucf(e: usize, n: usize, cf: f64) -> f64 {
    if n == 0 {
        return 1.0;
    }
    // z for the one-sided (1 - cf) quantile; cf = 0.25 -> z ≈ 0.674.
    let z = inverse_normal_cdf(1.0 - cf);
    let n = n as f64;
    let f = e as f64 / n;
    let z2 = z * z;
    let num = f + z2 / (2.0 * n) + z * (f / n - f * f / n + z2 / (4.0 * n * n)).sqrt();
    (num / (1.0 + z2 / n)).min(1.0)
}

/// Acklam-style rational approximation of the standard normal quantile.
fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0);
    // Beasley-Springer-Moro coefficients.
    const A: [f64; 4] = [
        2.50662823884,
        -18.61500062529,
        41.39119773534,
        -25.44106049637,
    ];
    const B: [f64; 4] = [
        -8.47351093090,
        23.08336743743,
        -21.06224101826,
        3.13082909833,
    ];
    const C: [f64; 9] = [
        0.3374754822726147,
        0.9761690190917186,
        0.1607979714918209,
        0.0276438810333863,
        0.0038405729373609,
        0.0003951896511919,
        0.0000321767881768,
        0.0000002888167364,
        0.0000003960315187,
    ];
    let y = p - 0.5;
    if y.abs() < 0.42 {
        let r = y * y;
        y * (((A[3] * r + A[2]) * r + A[1]) * r + A[0])
            / ((((B[3] * r + B[2]) * r + B[1]) * r + B[0]) * r + 1.0)
    } else {
        let r = if y > 0.0 { 1.0 - p } else { p };
        let r = (-r.ln()).ln();
        let mut x = C[0];
        let mut rk = 1.0;
        for &c in &C[1..] {
            rk *= r;
            x += c * rk;
        }
        if y < 0.0 {
            -x
        } else {
            x
        }
    }
}

/// Pessimistic subtree error estimate (sum of leaf UCBs weighted by leaf
/// size).
fn pessimistic_errors(tree: &DecisionTree, id: usize, cf: f64) -> f64 {
    match &tree.nodes[id].split {
        None => {
            let n = tree.nodes[id].n_rows;
            ucf(tree.nodes[id].errors(), n, cf) * n as f64
        }
        Some((_, children)) => children
            .iter()
            .map(|&c| pessimistic_errors(tree, c, cf))
            .sum(),
    }
}

/// Prune `tree` in place by pessimistic error comparison, bottom-up.
pub fn pessimistic_prune(tree: &mut DecisionTree, cf: f64) {
    fn visit(tree: &mut DecisionTree, id: usize, cf: f64) {
        let children = match &tree.nodes[id].split {
            Some((_, c)) => c.clone(),
            None => return,
        };
        for c in children {
            visit(tree, c, cf);
        }
        let node = &tree.nodes[id];
        let as_leaf = ucf(node.errors(), node.n_rows, cf) * node.n_rows as f64;
        let as_tree = pessimistic_errors(tree, id, cf);
        if as_leaf <= as_tree + 1e-12 {
            tree.nodes[id].split = None;
        }
    }
    visit(tree, 0, cf);
}

/// A trained C4.5 classifier.
pub struct C45 {
    /// The pruned decision tree.
    pub tree: DecisionTree,
}

impl C45 {
    /// Train on `rows` of `data` (single tree, no windowing).
    pub fn fit(data: &Dataset, rows: &[usize], config: &C45Config) -> Self {
        let index = ColumnarIndex::build(data);
        Self::fit_indexed(data, &index, rows, config)
    }

    /// [`C45::fit`] over a prebuilt [`ColumnarIndex`].
    pub fn fit_indexed(
        data: &Dataset,
        index: &ColumnarIndex,
        rows: &[usize],
        config: &C45Config,
    ) -> Self {
        let mut tree = DecisionTree::grow_indexed(data, index, rows, &GrowRule::C45, &config.grow);
        pessimistic_prune(&mut tree, config.cf);
        C45 { tree }
    }

    /// Train with windowing (§5.4.2): one window-grown tree.
    pub fn fit_windowed(data: &Dataset, rows: &[usize], config: &C45Config, seed: u64) -> Self {
        let tree = grow_windowed(data, rows, config, seed);
        C45 { tree }
    }

    /// Train `trials` windowed trees and keep the most accurate on the
    /// full training rows — C4.5's `-t` trials mode, the unit of work of
    /// the Parallel C4.5 experiments (§6.2.1).
    pub fn fit_trials(
        data: &Dataset,
        rows: &[usize],
        config: &C45Config,
        trials: usize,
        seed: u64,
    ) -> Self {
        let index = ColumnarIndex::build(data);
        Self::fit_trials_indexed(data, &index, rows, config, trials, seed)
    }

    /// [`C45::fit_trials`] over a prebuilt [`ColumnarIndex`]: all windows
    /// of all trials share the dataset's presorted columns.
    pub fn fit_trials_indexed(
        data: &Dataset,
        index: &ColumnarIndex,
        rows: &[usize],
        config: &C45Config,
        trials: usize,
        seed: u64,
    ) -> Self {
        assert!(trials >= 1);
        let mut best: Option<(f64, DecisionTree)> = None;
        for t in 0..trials {
            let tree =
                grow_windowed_indexed(data, index, rows, config, seed.wrapping_add(t as u64));
            let acc = tree.accuracy(data, rows);
            if best.as_ref().is_none_or(|(ba, _)| acc > *ba) {
                best = Some((acc, tree));
            }
        }
        C45 {
            tree: best.unwrap().1,
        }
    }
}

/// One windowing run: returns the pruned tree of the final window.
pub fn grow_windowed(
    data: &Dataset,
    rows: &[usize],
    config: &C45Config,
    seed: u64,
) -> DecisionTree {
    let index = ColumnarIndex::build(data);
    grow_windowed_indexed(data, &index, rows, config, seed)
}

/// [`grow_windowed`] over a prebuilt [`ColumnarIndex`]: every window
/// iteration grows from the same presorted columns.
pub fn grow_windowed_indexed(
    data: &Dataset,
    index: &ColumnarIndex,
    rows: &[usize],
    config: &C45Config,
    seed: u64,
) -> DecisionTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shuffled = rows.to_vec();
    shuffled.shuffle(&mut rng);
    // Quinlan's default initial window: max(20% of cases, 2·sqrt(n)).
    let n = rows.len();
    let init = ((n as f64 * 0.2) as usize)
        .max((2.0 * (n as f64).sqrt()) as usize)
        .clamp(1, n);
    let mut window: Vec<usize> = shuffled[..init].to_vec();
    let mut outside: Vec<usize> = shuffled[init..].to_vec();

    loop {
        let mut tree =
            DecisionTree::grow_indexed(data, index, &window, &GrowRule::C45, &config.grow);
        pessimistic_prune(&mut tree, config.cf);
        let misclassified: Vec<usize> = outside
            .iter()
            .copied()
            .filter(|&r| tree.predict(data, r) != data.class(r))
            .collect();
        if misclassified.is_empty() || outside.is_empty() {
            return tree;
        }
        // Add at most half the current window size of "difficult" cases
        // per cycle (C4.5's growth cap).
        let take = misclassified.len().min((window.len() / 2).max(1));
        let added: Vec<usize> = misclassified[..take].to_vec();
        window.extend(added.iter().copied());
        outside.retain(|r| !added.contains(r));
    }
}

impl Classifier for C45 {
    fn predict(&self, data: &Dataset, row: usize) -> u16 {
        self.tree.predict(data, row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::fixtures::heart;

    #[test]
    fn ucf_is_sane() {
        // No errors still gives a positive pessimistic estimate, shrinking
        // with n.
        assert!(ucf(0, 1, 0.25) > ucf(0, 10, 0.25));
        assert!(ucf(0, 10, 0.25) > 0.0);
        // More observed errors -> higher bound.
        assert!(ucf(5, 10, 0.25) > ucf(1, 10, 0.25));
        // Bound is a probability.
        for (e, n) in [(0, 1), (1, 2), (5, 10), (9, 10)] {
            let u = ucf(e, n, 0.25);
            assert!((0.0..=1.0).contains(&u), "ucf({e},{n}) = {u}");
            assert!(u >= e as f64 / n as f64 - 1e-12, "pessimism");
        }
    }

    #[test]
    fn inverse_normal_roundtrips_known_quantiles() {
        // Φ⁻¹(0.75) ≈ 0.6745, Φ⁻¹(0.975) ≈ 1.96.
        assert!((inverse_normal_cdf(0.75) - 0.6745).abs() < 1e-3);
        assert!((inverse_normal_cdf(0.975) - 1.9600).abs() < 1e-3);
        assert!((inverse_normal_cdf(0.5)).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.25) + inverse_normal_cdf(0.75)).abs() < 1e-9);
    }

    #[test]
    fn pruning_never_grows_the_tree() {
        let d = heart();
        let mut t = DecisionTree::grow(&d, &d.all_rows(), &GrowRule::C45, &GrowConfig::default());
        let before = t.leaves();
        pessimistic_prune(&mut t, 0.25);
        assert!(t.leaves() <= before);
    }

    #[test]
    fn aggressive_cf_prunes_harder() {
        let d = heart();
        let grow = || DecisionTree::grow(&d, &d.all_rows(), &GrowRule::C45, &GrowConfig::default());
        let mut lax = grow();
        pessimistic_prune(&mut lax, 0.4);
        let mut strict = grow();
        pessimistic_prune(&mut strict, 0.01);
        assert!(strict.leaves() <= lax.leaves());
    }

    #[test]
    fn windowing_terminates_and_classifies() {
        let d = heart();
        let c = C45::fit_windowed(&d, &d.all_rows(), &C45Config::default(), 3);
        // The final window tree correctly classifies the whole set, or the
        // window absorbed everything; either way accuracy is high on this
        // separable table.
        assert!(c.accuracy(&d, &d.all_rows()) >= 0.5);
    }

    #[test]
    fn trials_pick_the_best_window() {
        let d = heart();
        let single = C45::fit_windowed(&d, &d.all_rows(), &C45Config::default(), 0);
        let multi = C45::fit_trials(&d, &d.all_rows(), &C45Config::default(), 5, 0);
        assert!(multi.accuracy(&d, &d.all_rows()) >= single.accuracy(&d, &d.all_rows()) - 1e-12);
    }
}
