//! Splits and the optimal sub-K-ary split search (§5.3).
//!
//! NyuMiner's contribution: at every node, for any impurity function and
//! any maximum branch count `K`, find the split of least aggregate
//! impurity with the fewest branches — for numerical *and* categorical
//! variables.
//!
//! Numerical attributes: data elements collapse into **baskets** by value;
//! adjacent pure baskets of the same class merge (Figs. 5.1–5.4), leaving
//! boundaries only at Fayyad–Irani boundary points, where optimal cuts
//! provably fall (Theorem 5). A dynamic program over the `B` baskets then
//! finds the optimal sub-K-ary interval split in `O(K·B²)`.
//!
//! Categorical attributes: values whose rows are pure in the same class
//! merge into a **logical value**; every ordering of the logical values is
//! then treated as an ordered basket list and fed to the same DP
//! (`O(B!·K·B²)`, §5.3.2) — exhaustive for the small domains where it is
//! feasible, with a class-ratio ordering heuristic above that.
//!
//! The same machinery specialised to `K = 2` gives CART's binary splits,
//! and the gain-ratio chooser gives C4.5's tests, so all three learners
//! share one split vocabulary ([`SplitTest`]).

use crate::data::{AttrValue, Dataset};
use crate::impurity::{gain_ratio, Entropy, Gini, Impurity};

/// A decision-node test. Branches are numbered `0..arity`.
#[derive(Debug, Clone, PartialEq)]
pub enum SplitTest {
    /// Numeric interval split: branch `i` holds values `< cuts[i]`, with a
    /// final branch for values `≥` the last cut. `arity = cuts.len() + 1`.
    NumRanges {
        /// Attribute index.
        attr: usize,
        /// Ascending thresholds.
        cuts: Vec<f64>,
    },
    /// Categorical grouped split: branch `i` holds the values in
    /// `groups[i]`.
    CatGroups {
        /// Attribute index.
        attr: usize,
        /// Disjoint value groups.
        groups: Vec<Vec<u16>>,
    },
    /// C4.5's m-way categorical split: branch = value index.
    CatEach {
        /// Attribute index.
        attr: usize,
        /// Domain cardinality.
        arity: usize,
    },
}

impl SplitTest {
    /// The attribute tested.
    pub fn attr(&self) -> usize {
        match self {
            SplitTest::NumRanges { attr, .. }
            | SplitTest::CatGroups { attr, .. }
            | SplitTest::CatEach { attr, .. } => *attr,
        }
    }

    /// Number of branches.
    pub fn arity(&self) -> usize {
        match self {
            SplitTest::NumRanges { cuts, .. } => cuts.len() + 1,
            SplitTest::CatGroups { groups, .. } => groups.len(),
            SplitTest::CatEach { arity, .. } => *arity,
        }
    }

    /// The branch `row` follows, or `None` for a missing value (or a
    /// categorical value unseen at training time) — the tree sends those
    /// to its majority branch.
    pub fn branch(&self, data: &Dataset, row: usize) -> Option<usize> {
        match self {
            SplitTest::NumRanges { attr, cuts } => match data.value(row, *attr) {
                AttrValue::Num(v) => Some(cuts.iter().position(|&c| v < c).unwrap_or(cuts.len())),
                _ => None,
            },
            SplitTest::CatGroups { attr, groups } => match data.value(row, *attr) {
                AttrValue::Cat(v) => groups.iter().position(|g| g.contains(&v)),
                _ => None,
            },
            SplitTest::CatEach { attr, arity } => match data.value(row, *attr) {
                AttrValue::Cat(v) if (v as usize) < *arity => Some(v as usize),
                _ => None,
            },
        }
    }

    /// Human-readable description of branch `i`.
    pub fn describe_branch(&self, data: &Dataset, i: usize) -> String {
        let name = data.attributes()[self.attr()].name();
        match self {
            SplitTest::NumRanges { cuts, .. } => {
                if i == 0 {
                    format!("{name} < {:.4}", cuts[0])
                } else if i == cuts.len() {
                    format!("{name} >= {:.4}", cuts[i - 1])
                } else {
                    format!("{name} in [{:.4}, {:.4})", cuts[i - 1], cuts[i])
                }
            }
            SplitTest::CatGroups { attr, groups } => {
                let vals: Vec<&str> = groups[i]
                    .iter()
                    .map(|&v| match &data.attributes()[*attr] {
                        crate::data::Attribute::Categorical { values, .. } => {
                            values[v as usize].as_str()
                        }
                        crate::data::Attribute::Numeric { .. } => "?",
                    })
                    .collect();
                format!("{name} in {{{}}}", vals.join(","))
            }
            SplitTest::CatEach { attr, .. } => match &data.attributes()[*attr] {
                crate::data::Attribute::Categorical { values, .. } => {
                    format!("{name} = {}", values[i])
                }
                crate::data::Attribute::Numeric { .. } => format!("{name} = #{i}"),
            },
        }
    }
}

/// A value basket: all rows sharing (a run of) attribute values, with its
/// class histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Basket {
    /// Largest attribute value in the basket (numeric use).
    pub upper: f64,
    /// Class histogram.
    pub counts: Vec<usize>,
}

pub(crate) fn pure_class(counts: &[usize]) -> Option<usize> {
    let mut found = None;
    for (c, &n) in counts.iter().enumerate() {
        if n > 0 {
            if found.is_some() {
                return None;
            }
            found = Some(c);
        }
    }
    found
}

/// Group `rows` into per-distinct-value baskets of `attr` (ascending),
/// ignoring rows with missing values (Fig. 5.2).
pub fn value_baskets(data: &Dataset, rows: &[usize], attr: usize) -> Vec<Basket> {
    let mut pairs: Vec<(f64, u16)> = rows
        .iter()
        .filter_map(|&r| match data.value(r, attr) {
            AttrValue::Num(v) => Some((v, data.class(r))),
            _ => None,
        })
        .collect();
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out: Vec<Basket> = Vec::new();
    for (v, class) in pairs {
        match out.last_mut() {
            Some(b) if b.upper == v => b.counts[class as usize] += 1,
            _ => {
                let mut counts = vec![0; data.n_classes()];
                counts[class as usize] += 1;
                out.push(Basket { upper: v, counts });
            }
        }
    }
    out
}

/// Merge adjacent pure baskets of the same class (Figs. 5.3–5.4), leaving
/// divisions only at boundary points.
pub fn boundary_collapse(baskets: Vec<Basket>) -> Vec<Basket> {
    let mut out: Vec<Basket> = Vec::new();
    for b in baskets {
        if let Some(prev) = out.last_mut() {
            if let (Some(pc), Some(bc)) = (pure_class(&prev.counts), pure_class(&b.counts)) {
                if pc == bc {
                    prev.upper = b.upper;
                    for (i, &n) in b.counts.iter().enumerate() {
                        prev.counts[i] += n;
                    }
                    continue;
                }
            }
        }
        out.push(b);
    }
    out
}

/// Result of the interval DP: chosen basket cut positions (a cut after
/// basket `i` means baskets `..=i` end a partition), aggregate impurity,
/// and arity.
#[derive(Debug, Clone)]
pub struct IntervalSplit {
    /// Cut positions into the basket list (strictly ascending, each `<
    /// baskets.len() - 1`).
    pub cut_after: Vec<usize>,
    /// Aggregate impurity of the split.
    pub impurity: f64,
    /// Number of partitions (`cut_after.len() + 1`).
    pub arity: usize,
}

/// The `O(K·B²)` dynamic program of §5.3.1: the optimal **sub-K-ary**
/// interval split of an ordered basket list — minimal aggregate impurity,
/// and among minima the fewest branches.
pub fn optimal_interval_split(
    baskets: &[Basket],
    max_branches: usize,
    imp: &dyn Impurity,
) -> Option<IntervalSplit> {
    if baskets.is_empty() {
        return None;
    }
    let n_classes = baskets[0].counts.len();
    let mut counts = Vec::with_capacity(baskets.len() * n_classes);
    for bk in baskets {
        counts.extend_from_slice(&bk.counts);
    }
    interval_split_flat(&counts, n_classes, max_branches, imp)
}

/// The concrete impurity behind a `&dyn Impurity`, resolved once per DP
/// call so the per-cell kernel dispatches on a copyable tag instead of a
/// virtual call.
#[derive(Clone, Copy)]
enum CellKind {
    Gini,
    Entropy,
    Dyn,
}

impl CellKind {
    fn of(imp: &dyn Impurity) -> CellKind {
        match imp.as_any() {
            Some(a) if a.is::<Gini>() => CellKind::Gini,
            Some(a) if a.is::<Entropy>() => CellKind::Entropy,
            _ => CellKind::Dyn,
        }
    }
}

/// Weighted impurity `n/total · imp.of(cnt)` of a basket range whose class
/// histogram is `cnt` (summing to `n`). The Gini/Entropy arms replicate
/// `Impurity::of` term by term — same fold order, same operations, so the
/// result is bit-identical to the virtual call; they only skip `of`'s
/// redundant count re-sum (`n` is exactly that usize) and the dispatch,
/// which dominate the O(B²) cost triangle.
#[inline]
fn range_cost(kind: CellKind, imp: &dyn Impurity, cnt: &[usize], n: usize, total: usize) -> f64 {
    match kind {
        CellKind::Gini => {
            if n == 0 {
                return 0.0;
            }
            let nf = n as f64;
            let mut s = 0.0f64;
            for &c in cnt {
                // No absent-class branch: the term is p = 0/n = +0.0 and
                // adding +0.0 to the non-negative running sum is the
                // identity on its bit pattern — exactly `Gini::of`.
                let p = c as f64 / nf;
                s += p * p;
            }
            n as f64 / total as f64 * (1.0 - s)
        }
        CellKind::Entropy => {
            if n == 0 {
                return 0.0;
            }
            let nf = n as f64;
            let mut s = 0.0f64;
            for &c in cnt {
                if c > 0 {
                    let p = c as f64 / nf;
                    s += p * p.log2();
                }
            }
            n as f64 / total as f64 * (-s)
        }
        CellKind::Dyn => n as f64 / total as f64 * imp.of(cnt),
    }
}

/// Reusable buffers for [`interval_split_flat_in`]. The columnar engine
/// owns one per tree grow, so the DP — called once per (node, numeric
/// attribute) — performs no allocation at all in steady state.
#[derive(Default)]
pub(crate) struct DpScratch {
    countsf: Vec<f64>,
    rowsum: Vec<f64>,
    cntf: Vec<f64>,
    dp: Vec<f64>,
    back: Vec<u32>,
    dyn_cnt: Vec<usize>,
    cnt2: Vec<usize>,
}

/// Fold basket row `row` into the running range histogram `cnt` and
/// return the weighted impurity `n/total · imp.of(cnt)` of the extended
/// range. `cnt` and `row` hold exact integers as f64 (far below 2^53, so
/// every add is exact and `cnt[c]` stays bit-identical to `count as f64`).
/// The Gini/Entropy arms replicate `Impurity::of` term by term — same
/// fold order, same operations — so the result matches the virtual call
/// bit for bit; absent-class terms are skipped (+0.0 into a non-negative
/// sum is the identity on its bit pattern). The `Dyn` arm round-trips
/// through `dyn_cnt` to call the virtual `of` on the usize histogram it
/// expects.
#[inline]
fn cell_cost(
    kind: CellKind,
    imp: &dyn Impurity,
    row: &[f64],
    cnt: &mut [f64],
    n: f64,
    total: f64,
    dyn_cnt: &mut Vec<usize>,
) -> f64 {
    match kind {
        CellKind::Gini => {
            // Unconditional fold, exactly like `Gini::of`: an absent
            // class contributes p = 0/n = +0.0 and p·p = +0.0, so no
            // branch is needed in the inner loop.
            let mut s = 0.0f64;
            for c in 0..row.len() {
                let t = cnt[c] + row[c];
                cnt[c] = t;
                let p = t / n;
                s += p * p;
            }
            n / total * (1.0 - s)
        }
        CellKind::Entropy => {
            let mut s = 0.0f64;
            for c in 0..row.len() {
                let t = cnt[c] + row[c];
                cnt[c] = t;
                if t > 0.0 {
                    let p = t / n;
                    s += p * p.log2();
                }
            }
            n / total * (-s)
        }
        CellKind::Dyn => {
            dyn_cnt.clear();
            for c in 0..row.len() {
                cnt[c] += row[c];
                dyn_cnt.push(cnt[c] as usize);
            }
            n / total * imp.of(dyn_cnt)
        }
    }
}

/// The fused triangle-sweep + DP fold of [`interval_split_flat_in`],
/// monomorphised on the histogram width `M`, Gini only: the per-cell
/// class loop is a compile-time-bounded unroll with the running histogram
/// in registers. Cell for cell this performs the exact operations of
/// [`cell_cost`]'s Gini arm in the same order, and folds candidates into
/// `dp`/`back` exactly as the generic loop does, so the outcome is
/// bit-identical. Returns `true` (for use in the caller's width
/// dispatch).
fn fused_gini_dp<const M: usize>(
    countsf: &[f64],
    rowsum: &[f64],
    dp: &mut [f64],
    back: &mut [u32],
    b: usize,
    k_max: usize,
    totalf: f64,
) -> bool {
    let stride = b + 1;
    for i in 0..b {
        let mut cnt = [0.0f64; M];
        let mut nf = 0.0f64;
        for (off, (row, &rs)) in countsf[i * M..b * M]
            .chunks_exact(M)
            .zip(&rowsum[i..b])
            .enumerate()
        {
            let j = i + 1 + off;
            nf += rs;
            let mut s = 0.0f64;
            for c in 0..M {
                cnt[c] += row[c];
                let p = cnt[c] / nf;
                s += p * p;
            }
            let cell = nf / totalf * (1.0 - s);
            if i == 0 {
                dp[stride + j] = cell;
            } else {
                for k in 2..=k_max {
                    let cand = dp[(k - 1) * stride + i] + cell;
                    if cand < dp[k * stride + j] - 1e-15 {
                        dp[k * stride + j] = cand;
                        back[k * stride + j] = i as u32;
                    }
                }
            }
        }
    }
    true
}

/// Flat-counts core of [`optimal_interval_split`]: `counts` is a row-major
/// `B × n_classes` basket histogram. The columnar engine calls this
/// directly so the basket list never materialises per-basket `Vec`s.
pub(crate) fn interval_split_flat(
    counts: &[usize],
    n_classes: usize,
    max_branches: usize,
    imp: &dyn Impurity,
) -> Option<IntervalSplit> {
    interval_split_flat_in(
        counts,
        n_classes,
        max_branches,
        imp,
        &mut DpScratch::default(),
    )
}

/// [`interval_split_flat`] with caller-provided scratch buffers.
pub(crate) fn interval_split_flat_in(
    counts: &[usize],
    n_classes: usize,
    max_branches: usize,
    imp: &dyn Impurity,
    scr: &mut DpScratch,
) -> Option<IntervalSplit> {
    debug_assert!(n_classes > 0 && counts.len().is_multiple_of(n_classes));
    let b = counts.len() / n_classes;
    if b == 0 {
        return None;
    }
    let k_max = max_branches.min(b).max(1);
    let total: usize = counts.iter().sum();
    if total == 0 {
        return None;
    }

    // Monomorphic cost kernel: `range_cost(kind, …)` is `n/total ·
    // imp.of(cnt)` with the virtual call replaced by an inlined copy for
    // the two stock impurities (bit-identical; see [`range_cost`]).
    let kind = CellKind::of(imp);

    if k_max <= 2 {
        // Binary (CART) fast path: a single interior cut only ever needs
        // the prefix-cost row `cost(0, ·)` and suffix-cost row `cost(·, b)`
        // — O(B) cost cells instead of the O(B²) triangle. Same cell
        // arithmetic and tie rules as the general DP below. The left
        // histogram accumulates incrementally, the right is whole − left
        // (exact usize arithmetic, so each cell sees the very histogram a
        // from-scratch range sum would produce).
        let right = &mut scr.cnt2;
        right.clear();
        right.resize(n_classes, 0);
        for i in 0..b {
            for c in 0..n_classes {
                right[c] += counts[i * n_classes + c];
            }
        }
        let whole = range_cost(kind, imp, right, total, total);
        if k_max == 1 || b < 2 {
            return Some(IntervalSplit {
                impurity: whole,
                arity: 1,
                cut_after: Vec::new(),
            });
        }
        let left = &mut scr.dyn_cnt;
        left.clear();
        left.resize(n_classes, 0);
        let mut n_left = 0usize;
        let mut best2 = f64::INFINITY;
        let mut back2 = usize::MAX;
        for split in 1..b {
            let row = &counts[(split - 1) * n_classes..split * n_classes];
            for c in 0..n_classes {
                let v = row[c];
                left[c] += v;
                right[c] -= v;
                n_left += v;
            }
            let c = range_cost(kind, imp, left, n_left, total)
                + range_cost(kind, imp, right, total - n_left, total);
            if c < best2 - 1e-15 {
                best2 = c;
                back2 = split;
            }
        }
        // Ties go to fewer branches (Definition 7).
        return Some(if best2 < whole - 1e-12 {
            IntervalSplit {
                impurity: best2,
                arity: 2,
                cut_after: vec![back2 - 1],
            }
        } else {
            IntervalSplit {
                impurity: whole,
                arity: 1,
                cut_after: Vec::new(),
            }
        });
    }

    let DpScratch {
        countsf,
        rowsum,
        cntf,
        dp,
        back,
        dyn_cnt,
        ..
    } = scr;

    // Class counts as f64 (exact: integer-valued, far below 2^53), so
    // the triangle's running histogram adds need no per-cell int→float
    // conversion; per-basket weights likewise, so each cell's range size
    // is one add instead of a class loop (exact integer arithmetic, so
    // the accumulated `nf` is bit-identical to the usize sum cast once).
    countsf.clear();
    countsf.extend(counts.iter().map(|&c| c as f64));
    rowsum.clear();
    rowsum.extend(
        countsf
            .chunks_exact(n_classes)
            .map(|r| r.iter().sum::<f64>()),
    );
    let totalf = total as f64;

    // dp[k][j]: best cost splitting baskets [0, j) into exactly k parts
    // (flattened, stride b + 1). The O(B²) cost triangle and the layered
    // DP are fused: triangle row `i` (cells cost(i, j), j ∈ i+1..=b) is
    // one incremental-histogram sweep, and each cell folds into every
    // layer the moment it is produced — dp[k][j] gains the candidate
    // dp[k−1][i] + cost(i, j), so no cell is ever materialised. When row
    // `i` runs, dp[k−1][i] has received every candidate (all come from
    // rows < i), so it is final, exactly as in the layered form; and for
    // fixed (k, j) candidates still arrive in ascending split order under
    // the same `1e-15` tie rule, so dp, back, and the reconstructed cuts
    // are bit-identical to the layered form. (Candidates i < k−1 have
    // dp[k−1][i] = ∞ — a k−1-way split needs k−1 baskets — and ∞ never
    // beats anything, matching the layered form's split range.)
    let stride = b + 1;
    dp.clear();
    dp.resize((k_max + 1) * stride, f64::INFINITY);
    back.clear();
    back.resize((k_max + 1) * stride, u32::MAX);
    // Gini calls dispatch once to a width-monomorphised sweep (same
    // arithmetic; the class loop fully unrolls and the histogram lives in
    // registers). Other impurities take the generic per-cell kernel.
    let monomorphised = matches!(kind, CellKind::Gini)
        && match n_classes {
            1 => fused_gini_dp::<1>(countsf, rowsum, dp, back, b, k_max, totalf),
            2 => fused_gini_dp::<2>(countsf, rowsum, dp, back, b, k_max, totalf),
            3 => fused_gini_dp::<3>(countsf, rowsum, dp, back, b, k_max, totalf),
            4 => fused_gini_dp::<4>(countsf, rowsum, dp, back, b, k_max, totalf),
            5 => fused_gini_dp::<5>(countsf, rowsum, dp, back, b, k_max, totalf),
            6 => fused_gini_dp::<6>(countsf, rowsum, dp, back, b, k_max, totalf),
            7 => fused_gini_dp::<7>(countsf, rowsum, dp, back, b, k_max, totalf),
            8 => fused_gini_dp::<8>(countsf, rowsum, dp, back, b, k_max, totalf),
            _ => false,
        };
    if !monomorphised {
        cntf.clear();
        cntf.resize(n_classes, 0.0);
        for i in 0..b {
            cntf.iter_mut().for_each(|c| *c = 0.0);
            let mut nf = 0.0f64;
            for j in i + 1..=b {
                nf += rowsum[j - 1];
                let row = &countsf[(j - 1) * n_classes..j * n_classes];
                let cell = cell_cost(kind, imp, row, cntf, nf, totalf, dyn_cnt);
                if i == 0 {
                    dp[stride + j] = cell;
                } else {
                    for k in 2..=k_max {
                        let cand = dp[(k - 1) * stride + i] + cell;
                        if cand < dp[k * stride + j] - 1e-15 {
                            dp[k * stride + j] = cand;
                            back[k * stride + j] = i as u32;
                        }
                    }
                }
            }
        }
    }

    // Optimal sub-K-ary: least impurity; ties go to fewer branches
    // (Definition 7).
    let mut best_k = 1;
    for k in 2..=k_max {
        if dp[k * stride + b] < dp[best_k * stride + b] - 1e-12 {
            best_k = k;
        }
    }

    let mut cut_after = Vec::new();
    let (mut k, mut j) = (best_k, b);
    while k > 1 {
        let split = back[k * stride + j] as usize;
        cut_after.push(split - 1);
        j = split;
        k -= 1;
    }
    cut_after.reverse();
    Some(IntervalSplit {
        impurity: dp[best_k * stride + b],
        arity: best_k,
        cut_after,
    })
}

/// Engineering bound on the DP's basket count: nodes with more boundary
/// baskets than this are coarsened to equal-count groups first, trading
/// the exact-optimality guarantee for `O(K·160²)` per attribute on large
/// numeric nodes (the guarantee is exact whenever `B ≤ 256`, which covers
/// every modest node exactly; only large
/// largest nodes are coarsened).
pub(crate) const MAX_DP_BASKETS: usize = 160;

/// Merge adjacent baskets into at most `max` groups of near-equal weight.
fn coarsen(baskets: Vec<Basket>, max: usize) -> Vec<Basket> {
    if baskets.len() <= max {
        return baskets;
    }
    let total: usize = baskets.iter().map(|b| b.counts.iter().sum::<usize>()).sum();
    let per = total.div_ceil(max);
    let mut out: Vec<Basket> = Vec::with_capacity(max);
    let mut acc = 0usize;
    for b in baskets {
        let w: usize = b.counts.iter().sum();
        match out.last_mut() {
            // Keep filling the open group until it reaches its quota.
            Some(prev) if acc < per => {
                prev.upper = b.upper;
                for (i, &n) in b.counts.iter().enumerate() {
                    prev.counts[i] += n;
                }
                acc += w;
            }
            _ => {
                out.push(b);
                acc = w;
            }
        }
    }
    out
}

/// Optimal sub-K-ary split of a numeric attribute: basket collapse + DP.
/// Returns the test and its aggregate impurity, or `None` when no split
/// is possible (fewer than two baskets).
pub fn optimal_numeric_split(
    data: &Dataset,
    rows: &[usize],
    attr: usize,
    max_branches: usize,
    imp: &dyn Impurity,
) -> Option<(SplitTest, f64)> {
    let baskets = coarsen(
        boundary_collapse(value_baskets(data, rows, attr)),
        MAX_DP_BASKETS,
    );
    if baskets.len() < 2 {
        return None;
    }
    let s = optimal_interval_split(&baskets, max_branches, imp)?;
    if s.arity < 2 {
        return None;
    }
    let cuts: Vec<f64> = s
        .cut_after
        .iter()
        .map(|&i| midpoint(baskets[i].upper, baskets[i + 1].upper))
        .collect();
    Some((SplitTest::NumRanges { attr, cuts }, s.impurity))
}

pub(crate) fn midpoint(a: f64, b: f64) -> f64 {
    a + (b - a) / 2.0
}

/// Maximum logical-value count for which the categorical search is
/// exhaustive over orderings; larger domains — and all *two-class*
/// problems, where ordering by the class-0 proportion provably contains
/// an optimal split for concave impurities (Breiman et al.) — use the
/// single class-ratio ordering (documented deviation for tractability —
/// the dissertation itself notes "when [B] is big, the running time may
/// be a concern").
const MAX_EXHAUSTIVE_CATEGORICAL: usize = 6;

/// Optimal sub-K-ary split of a categorical attribute (§5.3.2): logical-
/// value merging, then the interval DP over orderings of the logical
/// values.
pub fn optimal_categorical_split(
    data: &Dataset,
    rows: &[usize],
    attr: usize,
    max_branches: usize,
    imp: &dyn Impurity,
) -> Option<(SplitTest, f64)> {
    let cardinality = data.attributes()[attr].cardinality();
    if cardinality < 2 {
        return None;
    }
    // Per-value class histograms over the present values.
    let mut hist: Vec<Vec<usize>> = vec![vec![0; data.n_classes()]; cardinality];
    for &r in rows {
        if let AttrValue::Cat(v) = data.value(r, attr) {
            hist[v as usize][data.class(r) as usize] += 1;
        }
    }
    optimal_categorical_split_hist(attr, &hist, data.n_classes(), max_branches, imp)
}

/// Histogram core of [`optimal_categorical_split`]: the search given the
/// per-value class histograms (`hist[v][class]`). The columnar engine
/// computes the histograms from its code columns and calls this directly.
pub(crate) fn optimal_categorical_split_hist(
    attr: usize,
    hist: &[Vec<usize>],
    n_classes: usize,
    max_branches: usize,
    imp: &dyn Impurity,
) -> Option<(SplitTest, f64)> {
    let cardinality = hist.len();
    // Logical values: all pure values of one class merge (provably
    // together in an optimal split, §5.3.2).
    let mut logical: Vec<(Vec<u16>, Vec<usize>)> = Vec::new(); // (values, counts)
    let mut pure_slot: Vec<Option<usize>> = vec![None; n_classes];
    #[allow(clippy::needless_range_loop)]
    for v in 0..cardinality {
        let counts = &hist[v];
        if counts.iter().sum::<usize>() == 0 {
            continue;
        }
        match pure_class(counts) {
            Some(c) => match pure_slot[c] {
                Some(slot) => {
                    logical[slot].0.push(v as u16);
                    for (i, &n) in counts.iter().enumerate() {
                        logical[slot].1[i] += n;
                    }
                }
                None => {
                    pure_slot[c] = Some(logical.len());
                    logical.push((vec![v as u16], counts.clone()));
                }
            },
            None => logical.push((vec![v as u16], counts.clone())),
        }
    }
    if logical.len() < 2 {
        return None;
    }

    let orderings: Vec<Vec<usize>> = if n_classes > 2 && logical.len() <= MAX_EXHAUSTIVE_CATEGORICAL
    {
        permutations(logical.len())
    } else {
        vec![ratio_ordering(&logical)]
    };

    let mut best: Option<(Vec<Vec<u16>>, f64, usize)> = None;
    for order in orderings {
        let baskets: Vec<Basket> = order
            .iter()
            .map(|&l| Basket {
                upper: 0.0,
                counts: logical[l].1.clone(),
            })
            .collect();
        if let Some(s) = optimal_interval_split(&baskets, max_branches, imp) {
            if s.arity < 2 {
                continue;
            }
            let better = match &best {
                None => true,
                Some((_, bi, ba)) => {
                    s.impurity < bi - 1e-12 || (s.impurity < bi + 1e-12 && s.arity < *ba)
                }
            };
            if better {
                // Materialise value groups from the cut positions.
                let mut groups = Vec::new();
                let mut start = 0;
                for &c in &s.cut_after {
                    groups.push(collect_values(&logical, &order[start..=c]));
                    start = c + 1;
                }
                groups.push(collect_values(&logical, &order[start..]));
                best = Some((groups, s.impurity, s.arity));
            }
        }
    }
    best.map(|(groups, impurity, _)| (SplitTest::CatGroups { attr, groups }, impurity))
}

fn collect_values(logical: &[(Vec<u16>, Vec<usize>)], idx: &[usize]) -> Vec<u16> {
    let mut vals: Vec<u16> = idx.iter().flat_map(|&l| logical[l].0.clone()).collect();
    vals.sort_unstable();
    vals
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    // Heap's algorithm, small n only.
    let mut items: Vec<usize> = (0..n).collect();
    let mut out = Vec::new();
    fn heap(k: usize, items: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(items.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, items, out);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }
    heap(n, &mut items, &mut out);
    out
}

/// Order logical values by the proportion of the first class — exact for
/// two-class Gini binary splits (Breiman), a heuristic otherwise.
fn ratio_ordering(logical: &[(Vec<u16>, Vec<usize>)]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..logical.len()).collect();
    idx.sort_by(|&a, &b| {
        let ra = logical[a].1[0] as f64 / logical[a].1.iter().sum::<usize>().max(1) as f64;
        let rb = logical[b].1[0] as f64 / logical[b].1.iter().sum::<usize>().max(1) as f64;
        ra.total_cmp(&rb)
    });
    idx
}

/// NyuMiner's node chooser: the optimal sub-K-ary split across all
/// attributes (least aggregate impurity; ties to fewer branches).
pub fn best_split(
    data: &Dataset,
    rows: &[usize],
    max_branches: usize,
    imp: &dyn Impurity,
) -> Option<(SplitTest, f64)> {
    let mut best: Option<(SplitTest, f64)> = None;
    for attr in 0..data.n_attributes() {
        let cand = if data.attributes()[attr].is_numeric() {
            optimal_numeric_split(data, rows, attr, max_branches, imp)
        } else {
            optimal_categorical_split(data, rows, attr, max_branches, imp)
        };
        if let Some((test, cost)) = cand {
            let better = match &best {
                None => true,
                Some((bt, bc)) => {
                    cost < bc - 1e-12 || (cost < bc + 1e-12 && test.arity() < bt.arity())
                }
            };
            if better {
                best = Some((test, cost));
            }
        }
    }
    best
}

/// C4.5's node chooser (§2.1.5): binary numeric splits at boundary
/// midpoints and m-way categorical splits, scored by gain ratio among
/// tests with positive gain.
pub fn c45_split(data: &Dataset, rows: &[usize]) -> Option<(SplitTest, f64)> {
    let parent = data.class_counts(rows);
    let mut best: Option<(SplitTest, f64)> = None;
    for attr in 0..data.n_attributes() {
        let cand: Option<(SplitTest, Vec<Vec<usize>>)> = if data.attributes()[attr].is_numeric() {
            // Best threshold by information gain.
            let baskets = boundary_collapse(value_baskets(data, rows, attr));
            if baskets.len() < 2 {
                None
            } else {
                let mut best_t: Option<(f64, Vec<Vec<usize>>, f64)> = None;
                let n_classes = data.n_classes();
                let mut left = vec![0usize; n_classes];
                let all: Vec<usize> = (0..n_classes)
                    .map(|c| baskets.iter().map(|b| b.counts[c]).sum())
                    .collect();
                for i in 0..baskets.len() - 1 {
                    #[allow(clippy::needless_range_loop)]
                    for c in 0..n_classes {
                        left[c] += baskets[i].counts[c];
                    }
                    let right: Vec<usize> = (0..n_classes).map(|c| all[c] - left[c]).collect();
                    let parts = vec![left.clone(), right];
                    let g = crate::impurity::information_gain(&parent, &parts);
                    if best_t.as_ref().is_none_or(|(bg, _, _)| g > *bg) {
                        best_t = Some((g, parts, midpoint(baskets[i].upper, baskets[i + 1].upper)));
                    }
                }
                best_t.map(|(_, parts, cut)| {
                    (
                        SplitTest::NumRanges {
                            attr,
                            cuts: vec![cut],
                        },
                        parts,
                    )
                })
            }
        } else {
            let arity = data.attributes()[attr].cardinality();
            if arity < 2 {
                None
            } else {
                let mut parts = vec![vec![0usize; data.n_classes()]; arity];
                for &r in rows {
                    if let AttrValue::Cat(v) = data.value(r, attr) {
                        parts[v as usize][data.class(r) as usize] += 1;
                    }
                }
                // At least two non-empty branches required.
                let non_empty = parts.iter().filter(|p| p.iter().sum::<usize>() > 0).count();
                if non_empty < 2 {
                    None
                } else {
                    Some((SplitTest::CatEach { attr, arity }, parts))
                }
            }
        };
        if let Some((test, parts)) = cand {
            let gain = crate::impurity::information_gain(&parent, &parts);
            if gain <= 1e-12 {
                continue;
            }
            let gr = gain_ratio(&parent, &parts);
            if best.as_ref().is_none_or(|(_, b)| gr > *b) {
                best = Some((test, gr));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Attribute, Dataset};
    use crate::impurity::{Entropy, Gini};

    /// The §5.2 worked example: 27 elements, values 0..=9, classes A/B/C.
    fn example_5_2() -> Dataset {
        let values = [
            0, 0, 0, 1, 1, 1, 1, 2, 2, 3, 3, 3, 4, 4, 4, 4, 5, 5, 6, 7, 7, 7, 8, 8, 9, 9, 9,
        ];
        let classes = [
            0, 0, 0, 0, 1, 1, 1, 1, 1, 2, 2, 2, 1, 1, 1, 2, 0, 0, 0, 2, 2, 2, 2, 2, 2, 2, 2,
        ];
        Dataset::new(
            vec![Attribute::Numeric { name: "v".into() }],
            vec![values.iter().map(|&v| AttrValue::Num(v as f64)).collect()],
            classes.to_vec(),
            vec!["A".into(), "B".into(), "C".into()],
        )
    }

    #[test]
    fn fig_5_2_ten_value_baskets() {
        let d = example_5_2();
        let baskets = value_baskets(&d, &d.all_rows(), 0);
        assert_eq!(baskets.len(), 10);
        assert_eq!(baskets[0].counts, vec![3, 0, 0]); // AAA at value 0
        assert_eq!(baskets[1].counts, vec![1, 3, 0]); // ABBB at value 1
        assert_eq!(baskets[4].counts, vec![0, 3, 1]); // BBBC at value 4
    }

    #[test]
    fn fig_5_4_seven_boundary_baskets() {
        let d = example_5_2();
        let collapsed = boundary_collapse(value_baskets(&d, &d.all_rows(), 0));
        // A | M | B | C | M | A A | C C C  ->  7 baskets.
        assert_eq!(collapsed.len(), 7);
        assert_eq!(collapsed[5].counts, vec![3, 0, 0]); // values 5,6: AA,A
        assert_eq!(collapsed[6].counts, vec![0, 0, 8]); // values 7-9
    }

    #[test]
    fn theorem_5_full_k_uses_all_boundaries() {
        let d = example_5_2();
        let collapsed = boundary_collapse(value_baskets(&d, &d.all_rows(), 0));
        let s = optimal_interval_split(&collapsed, 27, &Gini).unwrap();
        // With unlimited branches the optimum separates every boundary
        // basket (only the two M baskets contribute impurity).
        assert_eq!(s.arity, 7);
    }

    #[test]
    fn dp_is_optimal_against_brute_force() {
        let d = example_5_2();
        let baskets = boundary_collapse(value_baskets(&d, &d.all_rows(), 0));
        let b = baskets.len();
        for k_max in 2..=5 {
            let s = optimal_interval_split(&baskets, k_max, &Gini).unwrap();
            // Brute force: all cut subsets with < k_max cuts.
            let mut best = f64::INFINITY;
            for mask in 0u32..(1 << (b - 1)) {
                if (mask.count_ones() as usize) >= k_max {
                    continue;
                }
                let mut parts: Vec<Vec<usize>> = Vec::new();
                let mut cur = vec![0usize; 3];
                for (i, bk) in baskets.iter().enumerate() {
                    for (c, slot) in cur.iter_mut().enumerate() {
                        *slot += bk.counts[c];
                    }
                    if i + 1 < b && mask & (1 << i) != 0 {
                        parts.push(std::mem::replace(&mut cur, vec![0; 3]));
                    }
                }
                parts.push(cur);
                best = best.min(Gini.aggregate(&parts));
            }
            assert!(
                (s.impurity - best).abs() < 1e-9,
                "k_max={k_max}: dp {} vs brute {}",
                s.impurity,
                best
            );
        }
    }

    #[test]
    fn sub_k_prefers_fewer_branches_on_ties() {
        // Three alternating pure baskets need exactly 3 branches for zero
        // impurity; two pure baskets need exactly 2 — extra allowed
        // branches (K = 5) must not inflate the arity (Definition 7).
        let baskets = vec![
            Basket {
                upper: 0.0,
                counts: vec![4, 0],
            },
            Basket {
                upper: 1.0,
                counts: vec![0, 4],
            },
            Basket {
                upper: 2.0,
                counts: vec![4, 0],
            },
        ];
        let s = optimal_interval_split(&baskets, 5, &Gini).unwrap();
        assert_eq!(s.arity, 3);
        assert!(s.impurity < 1e-12);
        let s2 = optimal_interval_split(&baskets[..2], 5, &Gini).unwrap();
        assert_eq!(s2.arity, 2);
        assert!(s2.impurity < 1e-12);
    }

    #[test]
    fn numeric_split_cuts_at_midpoints() {
        let d = example_5_2();
        let (test, _) = optimal_numeric_split(&d, &d.all_rows(), 0, 7, &Gini).unwrap();
        let SplitTest::NumRanges { cuts, .. } = &test else {
            panic!("numeric split expected");
        };
        assert_eq!(cuts.len(), 6);
        // First boundary is between values 0 and 1.
        assert!((cuts[0] - 0.5).abs() < 1e-12);
        // All cuts ascending.
        for w in cuts.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    fn cat_dataset() -> Dataset {
        // Attribute with 5 values; values 0,1 pure class 0; 2 pure class
        // 1; 3,4 mixed.
        let vals = [0, 0, 1, 2, 2, 3, 3, 4, 4, 4];
        let classes = [0, 0, 0, 1, 1, 0, 1, 1, 1, 0];
        Dataset::new(
            vec![Attribute::Categorical {
                name: "c".into(),
                values: (0..5).map(|i| format!("v{i}")).collect(),
            }],
            vec![vals.iter().map(|&v| AttrValue::Cat(v)).collect()],
            classes.to_vec(),
            vec!["x".into(), "y".into()],
        )
    }

    #[test]
    fn categorical_logical_values_merge_pure_classes() {
        let d = cat_dataset();
        let (test, cost) = optimal_categorical_split(&d, &d.all_rows(), 0, 2, &Gini).unwrap();
        let SplitTest::CatGroups { groups, .. } = &test else {
            panic!("cat split expected");
        };
        assert_eq!(groups.len(), 2);
        // Pure values 0 and 1 (class x) must land in the same group.
        let g_of = |v: u16| groups.iter().position(|g| g.contains(&v)).unwrap();
        assert_eq!(g_of(0), g_of(1));
        assert!(cost >= 0.0);
        // Exhaustive check against all bipartitions of the 5 values.
        let mut best = f64::INFINITY;
        for mask in 1u32..(1 << 5) - 1 {
            let mut parts = vec![vec![0usize; 2]; 2];
            for r in 0..d.len() {
                let AttrValue::Cat(v) = d.value(r, 0) else {
                    unreachable!()
                };
                let side = usize::from(mask & (1 << v) != 0);
                parts[side][d.class(r) as usize] += 1;
            }
            best = best.min(Gini.aggregate(&parts));
        }
        assert!((cost - best).abs() < 1e-9, "{cost} vs brute {best}");
    }

    #[test]
    fn best_split_scans_all_attributes() {
        let d = crate::data::fixtures::heart();
        let (test, cost) = best_split(&d, &d.all_rows(), 3, &Gini).unwrap();
        assert!(cost >= 0.0);
        assert!(test.arity() >= 2);
    }

    #[test]
    fn c45_chooser_produces_positive_gain_split() {
        let d = crate::data::fixtures::heart();
        let (test, gr) = c45_split(&d, &d.all_rows()).unwrap();
        assert!(gr > 0.0);
        assert!(test.arity() >= 2);
    }

    #[test]
    fn split_with_single_value_attribute_is_none() {
        let d = Dataset::new(
            vec![Attribute::Numeric { name: "x".into() }],
            vec![vec![AttrValue::Num(1.0); 4]],
            vec![0, 1, 0, 1],
            vec!["a".into(), "b".into()],
        );
        assert!(optimal_numeric_split(&d, &d.all_rows(), 0, 3, &Entropy).is_none());
        assert!(best_split(&d, &d.all_rows(), 3, &Entropy).is_none());
        assert!(c45_split(&d, &d.all_rows()).is_none());
    }

    #[test]
    fn missing_values_are_skipped_in_baskets() {
        let d = Dataset::new(
            vec![Attribute::Numeric { name: "x".into() }],
            vec![vec![
                AttrValue::Num(1.0),
                AttrValue::Missing,
                AttrValue::Num(2.0),
            ]],
            vec![0, 1, 1],
            vec!["a".into(), "b".into()],
        );
        let baskets = value_baskets(&d, &d.all_rows(), 0);
        assert_eq!(baskets.len(), 2);
        assert_eq!(
            baskets
                .iter()
                .map(|b| b.counts.iter().sum::<usize>())
                .sum::<usize>(),
            2
        );
    }
}

#[cfg(test)]
mod coarsen_tests {
    use super::*;
    use crate::impurity::Gini;

    fn b(upper: f64, a: usize, bb: usize) -> Basket {
        Basket {
            upper,
            counts: vec![a, bb],
        }
    }

    #[test]
    fn small_lists_untouched() {
        let baskets = vec![b(0.0, 1, 0), b(1.0, 0, 1)];
        assert_eq!(coarsen(baskets.clone(), 256), baskets);
    }

    #[test]
    fn coarsening_bounds_group_count_and_preserves_totals() {
        let baskets: Vec<Basket> = (0..1000)
            .map(|i| b(i as f64, (i % 3 == 0) as usize, (i % 3 != 0) as usize))
            .collect();
        let total: usize = baskets
            .iter()
            .map(|bk| bk.counts.iter().sum::<usize>())
            .sum();
        let out = coarsen(baskets, 64);
        assert!(out.len() <= 65, "groups {}", out.len());
        let out_total: usize = out.iter().map(|bk| bk.counts.iter().sum::<usize>()).sum();
        assert_eq!(out_total, total);
        // Uppers ascend.
        for w in out.windows(2) {
            assert!(w[0].upper < w[1].upper);
        }
    }

    #[test]
    fn dp_still_works_on_coarsened_large_input() {
        let baskets: Vec<Basket> = (0..5000)
            .map(|i| b(i as f64, usize::from(i < 2500), usize::from(i >= 2500)))
            .collect();
        let out = coarsen(baskets, 128);
        let s = optimal_interval_split(&out, 2, &Gini).unwrap();
        assert_eq!(s.arity, 2);
        // The clean class boundary at 2500 survives coarsening.
        assert!(s.impurity < 0.02, "impurity {}", s.impurity);
    }
}
