//! Classification rule mining as a pattern-lattice problem — the third
//! application class of Table 3.1 (Figs. 3.3/3.8) over real datasets.
//!
//! Patterns are conjunctions of attribute conditions `(A1 = v1) ∧ … ∧
//! (Ak = vk)`; numeric attributes are discretised into quantile bins
//! (the heart-disease tree of Fig. 2.1 tests exactly such ranges).
//! A pattern is *good* — worth extending — while it covers at least
//! `min_cover` training rows (coverage is anti-monotone, so every E-dag/
//! E-tree traversal prunes it exactly); the final report keeps the
//! covered-and-confident conjunctions as classification rules, which plug
//! directly into [`crate::nyuminer::RuleList`] for classification.
//!
//! Unlike Fig. 3.3's illustrative dag (where both orderings of the same
//! condition set appear), conditions here are kept in ascending attribute
//! order, so each condition *set* is generated exactly once — the same
//! canonicalisation the itemset lattice uses.

use crate::data::{AttrValue, Dataset};
use crate::nyuminer::{Rule, RuleList};
use crate::split::SplitTest;
use fpdm_core::{sequential_ett, MiningOutcome, MiningProblem, PatternCodec};

/// One mined condition: attribute index and value index (categorical
/// value, or quantile-bin index for numeric attributes).
pub type Condition = (u8, u8);

/// A mined classification rule.
#[derive(Debug, Clone, PartialEq)]
pub struct MinedRule {
    /// Conditions in ascending attribute order.
    pub conditions: Vec<Condition>,
    /// Majority class among covered rows.
    pub class: u16,
    /// Covered-row count.
    pub cover: usize,
    /// Majority share among covered rows.
    pub confidence: f64,
}

/// Classification rule mining over a dataset.
pub struct RuleMiningProblem {
    data: Dataset,
    rows: Vec<usize>,
    /// Per-attribute bin upper bounds (numeric) or empty (categorical —
    /// the value domain is used directly).
    bins: Vec<Vec<f64>>,
    min_cover: usize,
}

impl RuleMiningProblem {
    /// Build the problem, discretising each numeric attribute into
    /// `numeric_bins` equal-frequency bins over `rows`.
    pub fn new(data: Dataset, rows: Vec<usize>, numeric_bins: usize, min_cover: usize) -> Self {
        assert!(numeric_bins >= 2);
        assert!(
            data.n_attributes() <= u8::MAX as usize,
            "attribute index must fit a byte"
        );
        let mut bins = Vec::with_capacity(data.n_attributes());
        for a in 0..data.n_attributes() {
            if data.attributes()[a].is_numeric() {
                let mut values: Vec<f64> = rows
                    .iter()
                    .filter_map(|&r| match data.value(r, a) {
                        AttrValue::Num(v) => Some(v),
                        _ => None,
                    })
                    .collect();
                values.sort_by(f64::total_cmp);
                let mut uppers = Vec::with_capacity(numeric_bins - 1);
                for b in 1..numeric_bins {
                    if values.is_empty() {
                        break;
                    }
                    let idx = (b * values.len() / numeric_bins).min(values.len() - 1);
                    let u = values[idx];
                    if uppers.last().is_none_or(|&l: &f64| u > l) {
                        uppers.push(u);
                    }
                }
                bins.push(uppers);
            } else {
                bins.push(Vec::new());
            }
        }
        RuleMiningProblem {
            data,
            rows,
            bins,
            min_cover,
        }
    }

    /// Number of condition values attribute `a` offers.
    fn domain(&self, a: usize) -> usize {
        if self.data.attributes()[a].is_numeric() {
            self.bins[a].len() + 1
        } else {
            self.data.attributes()[a].cardinality()
        }
    }

    /// Human-readable form of a condition, e.g. `age in (35, 62]` or
    /// `bp = high`.
    pub fn describe_condition(&self, cond: Condition) -> String {
        let (a, v) = (cond.0 as usize, cond.1 as usize);
        let name = self.data.attributes()[a].name();
        match &self.data.attributes()[a] {
            crate::data::Attribute::Categorical { values, .. } => {
                format!("{name} = {}", values[v])
            }
            crate::data::Attribute::Numeric { .. } => {
                let bins = &self.bins[a];
                if v == 0 {
                    format!("{name} <= {:.4}", bins[0])
                } else if v == bins.len() {
                    format!("{name} > {:.4}", bins[v - 1])
                } else {
                    format!("{name} in ({:.4}, {:.4}]", bins[v - 1], bins[v])
                }
            }
        }
    }

    /// Does `row` satisfy condition `(attr, value)`? Missing values fail.
    pub fn satisfies(&self, row: usize, cond: Condition) -> bool {
        let (a, v) = (cond.0 as usize, cond.1);
        match self.data.value(row, a) {
            AttrValue::Cat(c) => c == v as u16,
            AttrValue::Num(x) => {
                let bin = self.bins[a]
                    .iter()
                    .position(|&u| x <= u)
                    .unwrap_or(self.bins[a].len());
                bin == v as usize
            }
            AttrValue::Missing => false,
        }
    }

    fn cover_counts(&self, conds: &[Condition]) -> (usize, Vec<usize>) {
        let mut counts = vec![0usize; self.data.n_classes()];
        let mut n = 0;
        for &r in &self.rows {
            if conds.iter().all(|&c| self.satisfies(r, c)) {
                counts[self.data.class(r) as usize] += 1;
                n += 1;
            }
        }
        (n, counts)
    }

    /// Turn an outcome into the rule report, keeping conjunctions whose
    /// confidence reaches `min_confidence`.
    pub fn report(
        &self,
        outcome: &MiningOutcome<Vec<Condition>>,
        min_confidence: f64,
    ) -> Vec<MinedRule> {
        let mut out = Vec::new();
        for conds in outcome.good.keys() {
            let (n, counts) = self.cover_counts(conds);
            if n == 0 {
                continue;
            }
            let (class, top) = counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(c, &k)| (c as u16, k))
                .unwrap();
            let confidence = top as f64 / n as f64;
            if confidence >= min_confidence {
                out.push(MinedRule {
                    conditions: conds.clone(),
                    class,
                    cover: n,
                    confidence,
                });
            }
        }
        out.sort_by(|a, b| {
            b.confidence
                .total_cmp(&a.confidence)
                .then(b.cover.cmp(&a.cover))
                .then(a.conditions.cmp(&b.conditions))
        });
        out
    }

    /// Convert mined rules into a [`RuleList`] classifier. Conditions are
    /// expressed as [`SplitTest`]s so the list shares NyuMiner-RS's
    /// matching machinery.
    pub fn to_rule_list(&self, mined: &[MinedRule], default_class: u16) -> RuleList {
        let n = self.rows.len().max(1);
        let rules = mined
            .iter()
            .map(|m| Rule {
                conditions: m
                    .conditions
                    .iter()
                    .map(|&(a, v)| {
                        let a = a as usize;
                        if self.data.attributes()[a].is_numeric() {
                            (
                                SplitTest::NumRanges {
                                    attr: a,
                                    // Branch v of the bin thresholds;
                                    // NumRanges uses strict `<`, and bins
                                    // use `<=`, so nudge the cut points.
                                    cuts: self.bins[a]
                                        .iter()
                                        .map(|&u| u + f64::EPSILON * u.abs().max(1.0))
                                        .collect(),
                                },
                                v as usize,
                            )
                        } else {
                            (
                                SplitTest::CatEach {
                                    attr: a,
                                    arity: self.data.attributes()[a].cardinality(),
                                },
                                v as usize,
                            )
                        }
                    })
                    .collect(),
                class: m.class,
                confidence: m.confidence,
                support: m.cover as f64 / n as f64,
            })
            .collect();
        RuleList::select(rules, 0.0, 0.0, default_class)
    }
}

impl MiningProblem for RuleMiningProblem {
    type Pattern = Vec<Condition>;

    fn root(&self) -> Vec<Condition> {
        Vec::new()
    }

    fn pattern_len(&self, p: &Vec<Condition>) -> usize {
        p.len()
    }

    fn children(&self, p: &Vec<Condition>) -> Vec<Vec<Condition>> {
        let first_attr = p.last().map_or(0, |&(a, _)| a as usize + 1);
        let mut out = Vec::new();
        for a in first_attr..self.data.n_attributes() {
            for v in 0..self.domain(a) {
                let mut q = p.clone();
                q.push((a as u8, v as u8));
                out.push(q);
            }
        }
        out
    }

    fn immediate_subpatterns(&self, p: &Vec<Condition>) -> Vec<Vec<Condition>> {
        (0..p.len())
            .map(|drop| {
                p.iter()
                    .enumerate()
                    .filter(|(i, _)| *i != drop)
                    .map(|(_, &c)| c)
                    .collect()
            })
            .collect()
    }

    fn goodness(&self, p: &Vec<Condition>) -> f64 {
        self.cover_counts(p).0 as f64
    }

    fn is_good(&self, _p: &Vec<Condition>, goodness: f64) -> bool {
        goodness >= self.min_cover as f64
    }
}

impl PatternCodec for RuleMiningProblem {
    fn encode_pattern(&self, p: &Vec<Condition>) -> Vec<u8> {
        p.iter().flat_map(|&(a, v)| [a, v]).collect()
    }
    fn decode_pattern(&self, bytes: &[u8]) -> Vec<Condition> {
        bytes.chunks_exact(2).map(|c| (c[0], c[1])).collect()
    }
}

/// Mine all classification rules of `data` with coverage ≥ `min_cover`
/// and confidence ≥ `min_confidence`, numeric attributes discretised into
/// `numeric_bins` quantile bins.
pub fn mine_classification_rules(
    data: Dataset,
    rows: Vec<usize>,
    numeric_bins: usize,
    min_cover: usize,
    min_confidence: f64,
) -> (Vec<MinedRule>, RuleMiningProblem) {
    let problem = RuleMiningProblem::new(data, rows, numeric_bins, min_cover);
    let outcome = sequential_ett(&problem);
    let rules = problem.report(&outcome, min_confidence);
    (rules, problem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::fixtures::heart;
    use crate::data::Classifier;
    use fpdm_core::{parallel_ett, sequential_edt, ParallelConfig};
    use std::sync::Arc;

    fn problem() -> RuleMiningProblem {
        let d = heart();
        let rows = d.all_rows();
        RuleMiningProblem::new(d, rows, 3, 2)
    }

    #[test]
    fn children_ascend_attributes() {
        let p = problem();
        let root_children = p.children(&vec![]);
        // 3 attributes: two numeric (3 bins... up to 3 values each) + bp
        // (3 categorical values).
        assert!(!root_children.is_empty());
        for c in &root_children {
            assert_eq!(c.len(), 1);
        }
        let deeper = p.children(&vec![(1, 0)]);
        assert!(deeper.iter().all(|q| q.last().unwrap().0 == 2));
    }

    #[test]
    fn coverage_is_anti_monotone() {
        let p = problem();
        let base = vec![(2u8, 0u8)]; // bp = low
        let (n_base, _) = p.cover_counts(&base);
        for child in p.children(&base) {
            let (n_child, _) = p.cover_counts(&child);
            assert!(n_child <= n_base);
        }
    }

    #[test]
    fn edt_and_ett_agree() {
        let p = problem();
        assert_eq!(sequential_edt(&p).good, sequential_ett(&p).good);
    }

    #[test]
    fn parallel_agrees() {
        let p = Arc::new(problem());
        let seq = sequential_ett(&*p);
        let par = parallel_ett(Arc::clone(&p), &ParallelConfig::load_balanced(3));
        assert_eq!(seq.good, par.good);
    }

    #[test]
    fn mined_rules_satisfy_thresholds() {
        let d = heart();
        let rows = d.all_rows();
        let (rules, problem) = mine_classification_rules(d, rows, 3, 2, 0.9);
        assert!(!rules.is_empty(), "the heart table has confident rules");
        for r in &rules {
            assert!(r.cover >= 2);
            assert!(r.confidence >= 0.9);
            // Verify the reported statistics.
            let (n, counts) = problem.cover_counts(&r.conditions);
            assert_eq!(n, r.cover);
            assert_eq!(counts[r.class as usize] as f64 / n as f64, r.confidence);
        }
    }

    #[test]
    fn rule_list_classifier_roundtrip() {
        // At cover >= 1 the heart table yields pure rules for every row
        // (e.g. age > 35 -> yes), so the converted RuleList classifier
        // must fit the training table.
        let d = heart();
        let rows = d.all_rows();
        let (rules, problem) = mine_classification_rules(d.clone(), rows.clone(), 3, 1, 0.9);
        let (plur, _) = d.plurality(&rows);
        let list = problem.to_rule_list(&rules, plur);
        let acc = list.accuracy(&d, &rows);
        assert!(acc >= 0.95, "accuracy {acc}");
    }

    #[test]
    fn numeric_bins_partition_rows() {
        // Every non-missing numeric value satisfies exactly one bin
        // condition.
        let p = problem();
        for r in 0..6 {
            for a in [0usize, 1] {
                let satisfied: Vec<u8> = (0..p.domain(a) as u8)
                    .filter(|&v| p.satisfies(r, (a as u8, v)))
                    .collect();
                assert_eq!(satisfied.len(), 1, "row {r} attr {a}: {satisfied:?}");
            }
        }
    }
}
