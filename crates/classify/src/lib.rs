//! # `classify` — NyuMiner classification trees and their baselines
//!
//! Chapter 5 of *Free Parallel Data Mining*: **NyuMiner**, a
//! classification-tree learner that guarantees an *optimal sub-K-ary
//! split* at every node — the least-aggregate-impurity, fewest-branch
//! split for any impurity function and any branch bound `K`, for both
//! numerical and categorical attributes — together with clean-room
//! reimplementations of the dissertation's comparison baselines, C4.5 and
//! CART.
//!
//! | Piece | Module | Paper section |
//! |---|---|---|
//! | Datasets, stratified splits, folds | [`data`] | §5.1, §5.5 |
//! | Impurity functions, gain ratio | [`impurity`] | Def. 5, §2.1.5 |
//! | Boundary baskets + the `O(K·B²)` DP | [`split`] | §5.3 |
//! | Greedy tree growth | [`tree`] | §2.1.4 |
//! | Cost-complexity pruning + V-fold CV | [`prune`] | §5.4.1 |
//! | C4.5: gain ratio, pessimistic pruning, windowing | [`c45`] | §2.1.5, §5.4.2 |
//! | NyuMiner-CV / NyuMiner-RS (rule selection) | [`nyuminer`] | §5.3–5.4 |
//! | Complementarity tests | [`complement`] | §5.5.3 |
//! | FX features, rule trading | [`forex`] | §5.6 |
//!
//! ```
//! use classify::{Classifier, Dataset, Attribute, AttrValue};
//! use classify::nyuminer::{NyuConfig, NyuMinerCV};
//!
//! // Tiny two-class table: y = (x >= 2).
//! let data = Dataset::new(
//!     vec![Attribute::Numeric { name: "x".into() }],
//!     vec![(0..8).map(|i| AttrValue::Num(i as f64)).collect()],
//!     vec![0, 0, 1, 1, 1, 1, 1, 1],
//!     vec!["small".into(), "large".into()],
//! );
//! let model = NyuMinerCV::fit(&data, &data.all_rows(), &NyuConfig::default(), 0, 1);
//! assert_eq!(model.accuracy(&data, &data.all_rows()), 1.0);
//! ```

#![warn(missing_docs)]

pub mod c45;
pub mod columnar;
pub mod complement;
pub mod data;
pub mod forex;
pub mod impurity;
pub mod nyuminer;
pub mod prune;
pub mod rulemine;
pub mod split;
pub mod tree;

pub use c45::{C45Config, C45};
pub use columnar::ColumnarIndex;
pub use complement::{complementarity, ComplementarityReport};
pub use data::{AttrValue, Attribute, Classifier, Dataset};
pub use impurity::{Entropy, Gini, Impurity};
pub use nyuminer::{NyuConfig, NyuMinerCV, NyuMinerRS, Rule, RuleList};
pub use prune::{ccp_sequence, grow_with_cv_pruning, CvPruned};
pub use rulemine::{mine_classification_rules, MinedRule, RuleMiningProblem};
pub use split::{best_split, SplitTest};
pub use tree::{DecisionTree, GrowConfig, GrowRule};
