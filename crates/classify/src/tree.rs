//! Classification tree growth and prediction (§2.1.3–2.1.4, §5.1).
//!
//! The standard greedy top-down procedure shared by NyuMiner, CART and
//! C4.5: pick the best split of the node's data (per the learner's
//! criterion), recurse on each child, stop on purity or the size/depth
//! floors. Rows whose tested value is missing follow the node's largest
//! branch (a simple, documented policy; C4.5's fractional-case weighting
//! is not reproduced).

use crate::columnar::{self, ColumnarIndex};
use crate::data::{Classifier, Dataset};
use crate::impurity::{Gini, Impurity};
use crate::split::{best_split, c45_split, SplitTest};

/// The split-selection rule a tree is grown with.
pub enum GrowRule<'a> {
    /// NyuMiner: optimal sub-K-ary splits for a given impurity.
    NyuMiner {
        /// Maximum branches per split.
        max_branches: usize,
        /// Impurity function.
        impurity: &'a dyn Impurity,
    },
    /// CART: optimal *binary* splits under Gini.
    Cart,
    /// C4.5: gain-ratio splits (binary numeric, m-way categorical).
    C45,
}

/// Growth stopping knobs.
#[derive(Debug, Clone)]
pub struct GrowConfig {
    /// Minimum rows a node must have to be split further.
    pub min_split: usize,
    /// Maximum tree depth (root = 0).
    pub max_depth: usize,
}

impl Default for GrowConfig {
    fn default() -> Self {
        GrowConfig {
            min_split: 2,
            max_depth: 64,
        }
    }
}

/// One node of a grown tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeNode {
    /// Class histogram of the training rows at this node.
    pub class_counts: Vec<usize>,
    /// Majority class at this node.
    pub majority: u16,
    /// Decision test and child node ids (leaves have none).
    pub split: Option<(SplitTest, Vec<usize>)>,
    /// The child index rows with missing values follow.
    pub default_branch: usize,
    /// Node depth (root = 0).
    pub depth: usize,
    /// Training rows reaching this node (kept for rule extraction).
    pub n_rows: usize,
}

impl TreeNode {
    /// Is this node a leaf?
    pub fn is_leaf(&self) -> bool {
        self.split.is_none()
    }

    /// Training misclassifications if this node were a leaf.
    pub fn errors(&self) -> usize {
        self.n_rows - self.class_counts[self.majority as usize]
    }
}

/// A grown classification tree (arena of nodes, root at index 0).
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    /// The nodes; children referenced by index.
    pub nodes: Vec<TreeNode>,
    /// Rows the tree was grown on (training-set size for support values).
    pub n_train: usize,
}

impl DecisionTree {
    /// Grow a tree on `rows` of `data` with the given rule.
    ///
    /// Ingests `data` into a fresh [`ColumnarIndex`] first; when growing
    /// many trees over one dataset (cross-validation, windowing trials),
    /// build the index once and use [`DecisionTree::grow_indexed`].
    pub fn grow(data: &Dataset, rows: &[usize], rule: &GrowRule, config: &GrowConfig) -> Self {
        let index = ColumnarIndex::build(data);
        columnar::grow(data, &index, rows, rule, config)
    }

    /// Grow a tree over a prebuilt [`ColumnarIndex`] of `data` — the
    /// presort-once columnar engine. Produces exactly the tree
    /// [`DecisionTree::grow_reference`] would.
    pub fn grow_indexed(
        data: &Dataset,
        index: &ColumnarIndex,
        rows: &[usize],
        rule: &GrowRule,
        config: &GrowConfig,
    ) -> Self {
        columnar::grow(data, index, rows, rule, config)
    }

    /// The classic row-materialising growth path, which re-sorts numeric
    /// attributes at every node. Kept as the reference implementation the
    /// golden-equivalence suite compares the columnar engine against.
    pub fn grow_reference(
        data: &Dataset,
        rows: &[usize],
        rule: &GrowRule,
        config: &GrowConfig,
    ) -> Self {
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_train: rows.len(),
        };
        tree.grow_node(data, rows.to_vec(), rule, config, 0);
        tree
    }

    fn grow_node(
        &mut self,
        data: &Dataset,
        rows: Vec<usize>,
        rule: &GrowRule,
        config: &GrowConfig,
        depth: usize,
    ) -> usize {
        let class_counts = data.class_counts(&rows);
        let (majority, _) = data.plurality(&rows);
        let id = self.nodes.len();
        self.nodes.push(TreeNode {
            class_counts: class_counts.clone(),
            majority,
            split: None,
            default_branch: 0,
            depth,
            n_rows: rows.len(),
        });

        let pure = class_counts.iter().filter(|&&n| n > 0).count() <= 1;
        if pure || rows.len() < config.min_split || depth >= config.max_depth {
            return id;
        }

        let chosen = match rule {
            GrowRule::NyuMiner {
                max_branches,
                impurity,
            } => best_split(data, &rows, *max_branches, *impurity),
            GrowRule::Cart => best_split(data, &rows, 2, &Gini),
            GrowRule::C45 => c45_split(data, &rows),
        };
        let Some((test, _)) = chosen else {
            return id;
        };

        // Partition rows; missing values go to the largest branch.
        let mut parts: Vec<Vec<usize>> = vec![Vec::new(); test.arity()];
        let mut missing: Vec<usize> = Vec::new();
        for &r in &rows {
            match test.branch(data, r) {
                Some(b) => parts[b].push(r),
                None => missing.push(r),
            }
        }
        let default_branch = parts
            .iter()
            .enumerate()
            .max_by_key(|(_, p)| p.len())
            .map(|(i, _)| i)
            .unwrap_or(0);
        parts[default_branch].extend(missing);

        // A degenerate split (all rows in one branch) cannot make
        // progress; stop.
        if parts.iter().filter(|p| !p.is_empty()).count() < 2 {
            return id;
        }

        let mut children = Vec::with_capacity(parts.len());
        for part in parts {
            let child = self.grow_node(data, part, rule, config, depth + 1);
            children.push(child);
        }
        self.nodes[id].split = Some((test, children));
        self.nodes[id].default_branch = default_branch;
        id
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves (`|~T|`, the complexity of §5.4.1).
    pub fn leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Leaf ids of the subtree rooted at `id`.
    pub fn subtree_leaves(&self, id: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            match &self.nodes[n].split {
                None => out.push(n),
                Some((_, children)) => stack.extend(children.iter().copied()),
            }
        }
        out
    }

    /// Resubstitution error count `R(T_id)` of the subtree at `id`: the
    /// training misclassifications of its leaves.
    pub fn subtree_errors(&self, id: usize) -> usize {
        self.subtree_leaves(id)
            .into_iter()
            .map(|l| self.nodes[l].errors())
            .sum()
    }

    /// The leaf a row lands in.
    pub fn leaf_of(&self, data: &Dataset, row: usize) -> usize {
        let mut node = 0;
        while let Some((test, children)) = &self.nodes[node].split {
            let b = test
                .branch(data, row)
                .unwrap_or(self.nodes[node].default_branch);
            node = children[b];
        }
        node
    }

    /// Render as indented text (used by the examples).
    pub fn render(&self, data: &Dataset) -> String {
        let mut out = String::new();
        self.render_node(data, 0, "", &mut out);
        out
    }

    fn render_node(&self, data: &Dataset, id: usize, indent: &str, out: &mut String) {
        let n = &self.nodes[id];
        match &n.split {
            None => {
                out.push_str(&format!(
                    "{indent}=> {} {:?}\n",
                    data.class_names()[n.majority as usize],
                    n.class_counts
                ));
            }
            Some((test, children)) => {
                for (i, &c) in children.iter().enumerate() {
                    out.push_str(&format!("{indent}{}\n", test.describe_branch(data, i)));
                    self.render_node(data, c, &format!("{indent}  "), out);
                }
            }
        }
    }
}

impl Classifier for DecisionTree {
    fn predict(&self, data: &Dataset, row: usize) -> u16 {
        self.nodes[self.leaf_of(data, row)].majority
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::fixtures::heart;
    use crate::data::{AttrValue, Attribute};
    use crate::impurity::Entropy;

    fn rules() -> Vec<(&'static str, GrowRule<'static>)> {
        vec![
            (
                "nyu",
                GrowRule::NyuMiner {
                    max_branches: 3,
                    impurity: &Gini,
                },
            ),
            ("cart", GrowRule::Cart),
            ("c45", GrowRule::C45),
        ]
    }

    #[test]
    fn trees_fit_training_data() {
        let d = heart();
        for (name, rule) in rules() {
            let t = DecisionTree::grow(&d, &d.all_rows(), &rule, &GrowConfig::default());
            assert_eq!(
                t.accuracy(&d, &d.all_rows()),
                1.0,
                "{name} should fit the 6-row table exactly"
            );
            assert_eq!(t.subtree_errors(0), 0, "{name}");
            assert!(t.leaves() >= 2, "{name}");
        }
    }

    #[test]
    fn karp_is_classified_no() {
        // The Chapter 2 motivating example: Karp (140 lb, 32, low BP)
        // should be classified as "no heart disease" by the Fig. 2.1-style
        // tree.
        let d = heart();
        let t = DecisionTree::grow(
            &d,
            &d.all_rows(),
            &GrowRule::NyuMiner {
                max_branches: 3,
                impurity: &Entropy,
            },
            &GrowConfig::default(),
        );
        // Append Karp as a query row.
        let mut cols = vec![
            vec![AttrValue::Num(140.0)],
            vec![AttrValue::Num(32.0)],
            vec![AttrValue::Cat(0)],
        ];
        let query = Dataset::new(
            vec![
                Attribute::Numeric {
                    name: "weight".into(),
                },
                Attribute::Numeric { name: "age".into() },
                Attribute::Categorical {
                    name: "bp".into(),
                    values: vec!["low".into(), "med".into(), "high".into()],
                },
            ],
            std::mem::take(&mut cols),
            vec![0],
            vec!["no".into(), "yes".into()],
        );
        assert_eq!(t.predict(&query, 0), 0, "tree:\n{}", t.render(&d));
    }

    #[test]
    fn depth_limit_stops_growth() {
        let d = heart();
        let t = DecisionTree::grow(
            &d,
            &d.all_rows(),
            &GrowRule::Cart,
            &GrowConfig {
                min_split: 2,
                max_depth: 1,
            },
        );
        assert!(t.nodes.iter().all(|n| n.depth <= 1));
        assert!(t.nodes.iter().filter(|n| n.depth == 1).all(|n| n.is_leaf()));
    }

    #[test]
    fn min_split_stops_growth() {
        let d = heart();
        let t = DecisionTree::grow(
            &d,
            &d.all_rows(),
            &GrowRule::Cart,
            &GrowConfig {
                min_split: 100,
                max_depth: 64,
            },
        );
        assert_eq!(t.size(), 1);
        // A single-node tree predicts the plurality class everywhere.
        let (plur, _) = d.plurality(&d.all_rows());
        for r in d.all_rows() {
            assert_eq!(t.predict(&d, r), plur);
        }
    }

    #[test]
    fn missing_values_follow_default_branch() {
        let d = Dataset::new(
            vec![Attribute::Numeric { name: "x".into() }],
            vec![vec![
                AttrValue::Num(0.0),
                AttrValue::Num(0.0),
                AttrValue::Num(0.0),
                AttrValue::Num(10.0),
                AttrValue::Missing,
            ]],
            vec![0, 0, 0, 1, 0],
            vec!["a".into(), "b".into()],
        );
        let t = DecisionTree::grow(&d, &d.all_rows(), &GrowRule::Cart, &GrowConfig::default());
        // The missing-value row follows the bigger (x < 5) branch.
        assert_eq!(t.predict(&d, 4), 0);
    }

    #[test]
    fn subtree_accounting_consistent() {
        let d = heart();
        let t = DecisionTree::grow(&d, &d.all_rows(), &GrowRule::Cart, &GrowConfig::default());
        assert_eq!(t.subtree_leaves(0).len(), t.leaves());
        let total_leaf_rows: usize = t.subtree_leaves(0).iter().map(|&l| t.nodes[l].n_rows).sum();
        assert_eq!(total_leaf_rows, d.len());
    }
}
