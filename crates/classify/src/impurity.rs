//! Impurity functions (Definition 5, §5.3) and the C4.5 information
//! measures (§2.1.5).
//!
//! An impurity function `φ` on class-probability tuples must be maximal
//! at the uniform distribution, zero exactly at the pure points,
//! symmetric, and strictly concave — the concavity (Property 4) is what
//! makes merging two differently-distributed partitions strictly increase
//! aggregate impurity (Lemma 4), which in turn is why optimal splits fall
//! on boundary points.

/// An impurity function over class-count histograms.
pub trait Impurity {
    /// Impurity of a node with the given class counts (0 for empty/pure).
    fn of(&self, counts: &[usize]) -> f64;

    /// The concrete value behind the trait object, for implementations
    /// that opt in. Hot loops (the interval DP's `O(B²)` cost triangle)
    /// downcast through this to dispatch to monomorphised kernels with
    /// the exact same arithmetic; `None` keeps the generic virtual path.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Aggregate impurity of a split: the weighted sum
    /// `Σ (n_i / N) · φ(s_i)` over its partitions.
    fn aggregate(&self, parts: &[Vec<usize>]) -> f64 {
        let total: usize = parts.iter().map(|p| p.iter().sum::<usize>()).sum();
        if total == 0 {
            return 0.0;
        }
        parts
            .iter()
            .map(|p| {
                let n: usize = p.iter().sum();
                n as f64 / total as f64 * self.of(p)
            })
            .sum()
    }
}

/// The Gini index used by CART: `1 - Σ p_j²`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gini;

impl Impurity for Gini {
    fn of(&self, counts: &[usize]) -> f64 {
        let n: usize = counts.iter().sum();
        if n == 0 {
            return 0.0;
        }
        let n = n as f64;
        1.0 - counts
            .iter()
            .map(|&c| {
                let p = c as f64 / n;
                p * p
            })
            .sum::<f64>()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Class entropy `info(T) = -Σ p_j log2 p_j` (§2.1.5).
#[derive(Debug, Clone, Copy, Default)]
pub struct Entropy;

impl Impurity for Entropy {
    fn of(&self, counts: &[usize]) -> f64 {
        let n: usize = counts.iter().sum();
        if n == 0 {
            return 0.0;
        }
        let n = n as f64;
        -counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                p * p.log2()
            })
            .sum::<f64>()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// `gain(A) = info(T) − info_A(T)`: the information gained by a split
/// producing the given partitions (§2.1.5).
pub fn information_gain(parent: &[usize], parts: &[Vec<usize>]) -> f64 {
    Entropy.of(parent) - Entropy.aggregate(parts)
}

/// `split info(A)`: the potential information of the division itself.
pub fn split_info(parts: &[Vec<usize>]) -> f64 {
    let total: usize = parts.iter().map(|p| p.iter().sum::<usize>()).sum();
    if total == 0 {
        return 0.0;
    }
    -parts
        .iter()
        .map(|p| p.iter().sum::<usize>())
        .filter(|&n| n > 0)
        .map(|n| {
            let f = n as f64 / total as f64;
            f * f.log2()
        })
        .sum::<f64>()
}

/// `gain ratio(A) = gain(A) / split info(A)` — C4.5's criterion, the
/// normalisation that removes the gain criterion's bias toward
/// many-outcome tests.
pub fn gain_ratio(parent: &[usize], parts: &[Vec<usize>]) -> f64 {
    let si = split_info(parts);
    if si <= f64::EPSILON {
        return 0.0;
    }
    information_gain(parent, parts) / si
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_nodes_have_zero_impurity() {
        assert_eq!(Gini.of(&[5, 0, 0]), 0.0);
        assert_eq!(Entropy.of(&[0, 9]), 0.0);
        assert_eq!(Gini.of(&[]), 0.0);
        assert_eq!(Entropy.of(&[0, 0]), 0.0);
    }

    #[test]
    fn uniform_is_maximal() {
        // Property 1 of Definition 5 on a grid of 2-class histograms.
        let uniform_g = Gini.of(&[5, 5]);
        let uniform_e = Entropy.of(&[5, 5]);
        for a in 0..=10usize {
            let counts = [a, 10 - a];
            assert!(Gini.of(&counts) <= uniform_g + 1e-12);
            assert!(Entropy.of(&counts) <= uniform_e + 1e-12);
        }
        assert!((uniform_g - 0.5).abs() < 1e-12);
        assert!((uniform_e - 1.0).abs() < 1e-12);
    }

    #[test]
    fn symmetry() {
        assert!((Gini.of(&[3, 7]) - Gini.of(&[7, 3])).abs() < 1e-12);
        assert!((Entropy.of(&[2, 5, 9]) - Entropy.of(&[9, 2, 5])).abs() < 1e-12);
    }

    #[test]
    fn lemma_4_merging_never_decreases_aggregate_impurity() {
        // Merge two partitions with different distributions: aggregate
        // impurity strictly increases (concavity).
        let a = vec![8, 2];
        let b = vec![1, 9];
        let merged = vec![9, 11];
        for imp in [&Gini as &dyn Impurity, &Entropy] {
            let split = imp.aggregate(&[a.clone(), b.clone()]);
            let whole = imp.aggregate(std::slice::from_ref(&merged));
            assert!(whole > split, "merging must increase impurity");
        }
        // Identical distributions: equality.
        let same = imp_eq_case();
        for imp in [&Gini as &dyn Impurity, &Entropy] {
            let split = imp.aggregate(&[same.0.clone(), same.1.clone()]);
            let whole = imp.aggregate(&[vec![same.0[0] + same.1[0], same.0[1] + same.1[1]]]);
            assert!((whole - split).abs() < 1e-12);
        }
    }

    fn imp_eq_case() -> (Vec<usize>, Vec<usize>) {
        (vec![4, 2], vec![2, 1]) // both 2:1
    }

    #[test]
    fn gain_and_ratio() {
        // Perfect split of a 4+4 parent: gain = 1 bit; split into two
        // equal halves: split info = 1; ratio = 1.
        let parent = [4, 4];
        let parts = vec![vec![4, 0], vec![0, 4]];
        assert!((information_gain(&parent, &parts) - 1.0).abs() < 1e-12);
        assert!((split_info(&parts) - 1.0).abs() < 1e-12);
        assert!((gain_ratio(&parent, &parts) - 1.0).abs() < 1e-12);
        // A useless split gains nothing.
        let useless = vec![vec![2, 2], vec![2, 2]];
        assert!(information_gain(&parent, &useless).abs() < 1e-12);
    }

    #[test]
    fn gain_ratio_penalises_many_outcomes() {
        // Splitting 8 elements into 8 singletons is "perfect" by gain but
        // its split info is 3 bits, crushing the ratio.
        let parent = [4, 4];
        let shatter: Vec<Vec<usize>> = (0..8)
            .map(|i| if i < 4 { vec![1, 0] } else { vec![0, 1] })
            .collect();
        let two_way = vec![vec![4, 0], vec![0, 4]];
        assert!(information_gain(&parent, &shatter) >= information_gain(&parent, &two_way) - 1e-12);
        assert!(gain_ratio(&parent, &shatter) < gain_ratio(&parent, &two_way));
    }
}
