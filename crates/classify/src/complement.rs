//! Complementarity tests (§5.5.3, Table 5.4).
//!
//! Compare several classifiers' decisions on a common test set: when all
//! agree, the consensus is more accurate than any classifier alone; when
//! they disagree, at least one of them is usually right — evidence that
//! differently-structured trees (NyuMiner vs. C4.5 vs. CART) complement
//! each other.

use crate::data::Dataset;

/// The Table 5.4 row for one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct ComplementarityReport {
    /// Test cases examined.
    pub total: usize,
    /// Cases on which every classifier gave the same class.
    pub all_agree: usize,
    /// `all_agree / total`.
    pub coverage: f64,
    /// Accuracy of the consensus on the agreed cases.
    pub agree_accuracy: f64,
    /// Cases with disagreement.
    pub disagree: usize,
    /// Fraction of disagreement cases where at least one classifier was
    /// correct (NaN-free: 0 when there are no disagreements).
    pub at_least_one_correct: f64,
}

/// Run the complementarity analysis over per-classifier prediction
/// vectors (all aligned with `rows`).
pub fn complementarity(
    data: &Dataset,
    rows: &[usize],
    predictions: &[Vec<u16>],
) -> ComplementarityReport {
    assert!(!predictions.is_empty(), "need at least one classifier");
    for p in predictions {
        assert_eq!(p.len(), rows.len(), "prediction vector mismatch");
    }
    let mut all_agree = 0usize;
    let mut agree_correct = 0usize;
    let mut disagree = 0usize;
    let mut one_correct = 0usize;
    for (i, &r) in rows.iter().enumerate() {
        let truth = data.class(r);
        let first = predictions[0][i];
        if predictions.iter().all(|p| p[i] == first) {
            all_agree += 1;
            if first == truth {
                agree_correct += 1;
            }
        } else {
            disagree += 1;
            if predictions.iter().any(|p| p[i] == truth) {
                one_correct += 1;
            }
        }
    }
    let total = rows.len();
    ComplementarityReport {
        total,
        all_agree,
        coverage: all_agree as f64 / total.max(1) as f64,
        agree_accuracy: agree_correct as f64 / all_agree.max(1) as f64,
        disagree,
        at_least_one_correct: one_correct as f64 / disagree.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{AttrValue, Attribute};

    fn toy() -> Dataset {
        Dataset::new(
            vec![Attribute::Numeric { name: "x".into() }],
            vec![(0..6).map(|i| AttrValue::Num(i as f64)).collect()],
            vec![0, 0, 1, 1, 0, 1],
            vec!["a".into(), "b".into()],
        )
    }

    #[test]
    fn unanimous_and_split_cases() {
        let d = toy();
        let rows = d.all_rows();
        // Classifier 1 perfect; classifier 2 wrong on rows 4 and 5.
        let p1 = vec![0, 0, 1, 1, 0, 1];
        let p2 = vec![0, 0, 1, 1, 1, 0];
        let rep = complementarity(&d, &rows, &[p1, p2]);
        assert_eq!(rep.total, 6);
        assert_eq!(rep.all_agree, 4);
        assert!((rep.coverage - 4.0 / 6.0).abs() < 1e-12);
        assert!((rep.agree_accuracy - 1.0).abs() < 1e-12);
        assert_eq!(rep.disagree, 2);
        // Classifier 1 is right on both disagreement cases.
        assert!((rep.at_least_one_correct - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_classifier_always_agrees() {
        let d = toy();
        let rows = d.all_rows();
        let p = vec![0, 0, 1, 1, 0, 0];
        let rep = complementarity(&d, &rows, &[p]);
        assert_eq!(rep.all_agree, 6);
        assert_eq!(rep.disagree, 0);
        assert_eq!(rep.at_least_one_correct, 0.0);
        assert!((rep.agree_accuracy - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn all_wrong_consensus() {
        let d = toy();
        let rows = d.all_rows();
        let p = vec![1, 1, 0, 0, 1, 0];
        let rep = complementarity(&d, &rows, &[p.clone(), p]);
        assert_eq!(rep.agree_accuracy, 0.0);
    }
}
