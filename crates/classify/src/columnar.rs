//! Presort-once columnar split engine.
//!
//! The textbook C4.5 bottleneck is that every node re-sorts every numeric
//! attribute's values before looking for a threshold — `O(n·k·log n)` per
//! node, dominated by the sort and by the per-basket `Vec` churn. This
//! module removes both costs in the SLIQ/SPRINT style while reproducing
//! the existing choosers **bit for bit**:
//!
//! * [`ColumnarIndex`] ingests a [`Dataset`] once: each numeric attribute
//!   gets a single rank permutation (its non-missing rows, stably sorted
//!   ascending by value) and a dense per-row value column; each
//!   categorical attribute gets a dense per-row code column.
//! * Trees grow over **row-index sets**. Each node keeps, per numeric
//!   attribute, its rows in presorted value order; a split stably
//!   partitions those lists into the children in one `O(n)` pass, so no
//!   node below the root ever sorts anything.
//! * Numeric thresholds are found by a linear sweep that builds the
//!   boundary baskets of §5.3 directly into flat (structure-of-arrays)
//!   histograms — `O(n·k)` per node — and feeds them to the same interval
//!   DP as the classic path. Categorical splits are one counting pass
//!   over the code column.
//!
//! Equivalence with the classic per-node path
//! ([`DecisionTree::grow_reference`]) is exact, not approximate: the
//! presorted order is the same total order (`f64::total_cmp`) the classic
//! path sorts into, basket histograms are order-insensitive, and every
//! floating-point expression is evaluated in the same order on the same
//! values — so the same tests, thresholds, and leaf labels fall out. The
//! golden suite in `tests/golden_columnar.rs` asserts this on the seven
//! benchmark datasets and under a proptest.
//!
//! Cross-validation folds, windowing trials, and the parallel drivers in
//! `parmine` all share one immutable index per dataset (it is `Sync`; wrap
//! it in an `Arc` and grow from any number of threads).

use crate::data::{AttrValue, Dataset};
use crate::impurity::{gain_ratio, information_gain, Entropy, Gini, Impurity};
use crate::split::{
    interval_split_flat_in, midpoint, optimal_categorical_split_hist, DpScratch, SplitTest,
    MAX_DP_BASKETS,
};
use crate::tree::{DecisionTree, GrowConfig, GrowRule, TreeNode};

/// Sentinel branch id for rows whose tested value is missing.
const NO_BRANCH: u16 = u16::MAX;
/// Sentinel code for a missing categorical value.
const NO_CODE: u16 = u16::MAX;

/// A dataset ingested once for columnar split search: per-attribute sorted
/// row permutations (numeric) and dense code columns (categorical).
///
/// Build one per dataset and share it (`&` or `Arc`) across every tree
/// grown on any subset of that dataset's rows — cross-validation folds,
/// windowing trials, and parallel workers all reuse the same sort.
#[derive(Debug, Clone)]
pub struct ColumnarIndex {
    n_rows: usize,
    n_attributes: usize,
    /// Numeric slot of each attribute (dense numbering), if numeric.
    num_slot: Vec<Option<usize>>,
    /// Per numeric slot: all non-missing rows, ascending by value (stable
    /// `total_cmp` order — the same order the classic path sorts into).
    sorted: Vec<Vec<u32>>,
    /// Per numeric slot: value per row id (`NaN` where missing).
    values: Vec<Vec<f64>>,
    /// Categorical slot of each attribute, if categorical.
    cat_slot: Vec<Option<usize>>,
    /// Per categorical slot: value code per row id (`NO_CODE` = missing).
    codes: Vec<Vec<u16>>,
    /// Per categorical slot: domain cardinality.
    cardinality: Vec<usize>,
}

impl ColumnarIndex {
    /// Ingest `data`: one stable sort per numeric attribute, one scan per
    /// categorical attribute. This is the only sort the engine ever does.
    pub fn build(data: &Dataset) -> Self {
        let n = data.len();
        assert!(n < u32::MAX as usize, "row ids are u32");
        let mut num_slot = vec![None; data.n_attributes()];
        let mut cat_slot = vec![None; data.n_attributes()];
        let mut sorted = Vec::new();
        let mut values = Vec::new();
        let mut codes = Vec::new();
        let mut cardinality = Vec::new();
        for (attr, schema) in data.attributes().iter().enumerate() {
            if schema.is_numeric() {
                let mut vals = vec![f64::NAN; n];
                let mut rows: Vec<u32> = Vec::with_capacity(n);
                for (r, slot) in vals.iter_mut().enumerate() {
                    if let AttrValue::Num(v) = data.value(r, attr) {
                        *slot = v;
                        rows.push(r as u32);
                    }
                }
                rows.sort_by(|&a, &b| vals[a as usize].total_cmp(&vals[b as usize]));
                num_slot[attr] = Some(sorted.len());
                sorted.push(rows);
                values.push(vals);
            } else {
                let mut col = vec![NO_CODE; n];
                for (r, slot) in col.iter_mut().enumerate() {
                    if let AttrValue::Cat(v) = data.value(r, attr) {
                        *slot = v;
                    }
                }
                cat_slot[attr] = Some(codes.len());
                codes.push(col);
                cardinality.push(schema.cardinality());
            }
        }
        ColumnarIndex {
            n_rows: n,
            n_attributes: data.n_attributes(),
            num_slot,
            sorted,
            values,
            cat_slot,
            codes,
            cardinality,
        }
    }

    /// Number of rows the index was built over.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }
}

/// Flat (structure-of-arrays) basket list: `uppers[i]` is basket `i`'s
/// largest value, `counts[i*k..(i+1)*k]` its class histogram. One reusable
/// buffer replaces the per-basket `Vec<usize>` allocations of the classic
/// path.
struct FlatBaskets {
    k: usize,
    uppers: Vec<f64>,
    counts: Vec<usize>,
}

impl FlatBaskets {
    fn new(k: usize) -> Self {
        FlatBaskets {
            k,
            uppers: Vec::new(),
            counts: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.uppers.len()
    }

    fn row(&self, i: usize) -> &[usize] {
        &self.counts[i * self.k..(i + 1) * self.k]
    }

    /// Rebuild as the **collapsed** value baskets of the presorted rows
    /// (Figs. 5.2–5.4): one basket per distinct value in ascending value
    /// order, with adjacent pure same-class baskets merged — `fill` and
    /// `boundary_collapse` fused into the one pass. Each value basket is
    /// built as the (open) last basket; when its value run ends it is
    /// merged backwards iff it and the basket before it are pure in the
    /// same class — the very merges the two-pass form performs, in the
    /// same order, by exact count addition.
    ///
    /// Histograms are `k` wide and indexed by `slot_of[class]` — pass the
    /// identity map for full-width rows, or a compressed map (absent
    /// classes dropped, present classes in ascending order) to shrink
    /// every basket to the classes the node actually holds.
    fn fill(
        &mut self,
        rows_sorted: &[u32],
        vals: &[f64],
        data: &Dataset,
        k: usize,
        slot_of: &[u16],
    ) {
        self.k = k;
        self.uppers.clear();
        self.counts.clear();
        // Purity of the last *closed* basket, carried so no basket is
        // ever re-scanned (merging pure into pure same-class keeps the
        // class, so the carried value stays correct).
        let mut prev_pure: Option<u16> = None;
        // The open basket's purity: first slot seen, and whether any row
        // since differed.
        let mut cur_first = 0u16;
        let mut cur_mixed = false;
        // Nothing compares equal (`==`) to NaN, so the first row always
        // opens a basket. Same merge rule as the classic path: equal
        // values share a basket (they are adjacent in total_cmp order).
        let mut prev_v = f64::NAN;
        for &r in rows_sorted {
            let v = vals[r as usize];
            let slot = slot_of[data.class(r as usize) as usize];
            if v == prev_v {
                let i = self.uppers.len() - 1;
                self.counts[i * k + slot as usize] += 1;
                cur_mixed |= slot != cur_first;
            } else {
                if !self.uppers.is_empty() {
                    self.close_basket(&mut prev_pure, cur_first, cur_mixed);
                }
                prev_v = v;
                self.uppers.push(v);
                self.counts.resize(self.counts.len() + k, 0);
                self.counts[(self.uppers.len() - 1) * k + slot as usize] = 1;
                cur_first = slot;
                cur_mixed = false;
            }
        }
        if !self.uppers.is_empty() {
            self.close_basket(&mut prev_pure, cur_first, cur_mixed);
        }
    }

    /// End the open basket's value run: merge it into its predecessor if
    /// both are pure in the same class (Figs. 5.3–5.4), and update the
    /// carried purity.
    #[inline]
    fn close_basket(&mut self, prev_pure: &mut Option<u16>, cur_first: u16, cur_mixed: bool) {
        let cur = if cur_mixed { None } else { Some(cur_first) };
        let last = self.uppers.len() - 1;
        if last > 0 {
            if let (Some(pc), Some(cc)) = (*prev_pure, cur) {
                if pc == cc {
                    self.uppers[last - 1] = self.uppers[last];
                    for c in 0..self.k {
                        self.counts[(last - 1) * self.k + c] += self.counts[last * self.k + c];
                    }
                    self.uppers.pop();
                    self.counts.truncate(last * self.k);
                    return; // still pure in the same class: purity carried
                }
            }
        }
        *prev_pure = cur;
    }

    /// Merge adjacent baskets into at most `max` near-equal-weight groups
    /// in place — flat-buffer form of `coarsen`.
    fn coarsen(&mut self, max: usize) {
        if self.len() <= max {
            return;
        }
        let k = self.k;
        let total: usize = self.counts.iter().sum();
        let per = total.div_ceil(max);
        let mut out = 0usize;
        let mut acc = 0usize;
        for i in 0..self.len() {
            let w: usize = self.row(i).iter().sum();
            if out > 0 && acc < per {
                // Keep filling the open group until it reaches its quota.
                self.uppers[out - 1] = self.uppers[i];
                for c in 0..k {
                    self.counts[(out - 1) * k + c] += self.counts[i * k + c];
                }
                acc += w;
            } else {
                if out != i {
                    self.uppers[out] = self.uppers[i];
                    for c in 0..k {
                        self.counts[out * k + c] = self.counts[i * k + c];
                    }
                }
                out += 1;
                acc = w;
            }
        }
        self.uppers.truncate(out);
        self.counts.truncate(out * k);
    }
}

/// One node's worth of rows: the rows in tree-partition order plus, per
/// numeric slot, the same rows in presorted value order.
struct NodeRows {
    rows: Vec<u32>,
    sorted: Vec<Vec<u32>>,
}

/// The per-grow engine: borrows the dataset and index, owns the reusable
/// scratch buffers.
struct Engine<'a> {
    data: &'a Dataset,
    index: &'a ColumnarIndex,
    /// Per-row branch assignment scratch (valid only for the node being
    /// partitioned).
    branch_of: Vec<u16>,
    fb: FlatBaskets,
    /// Interval-DP buffers, reused across every (node, attribute) call.
    dps: DpScratch,
    /// Identity class map (`slot_of[c] = c`), for full-width histograms.
    ident: Vec<u16>,
    /// Compressed class map for the node being split (see
    /// [`Engine::best_split`]); `n_slots` is its image size.
    slot_of: Vec<u16>,
    n_slots: usize,
    // C4.5 numeric-sweep scratch (all n_classes long).
    left: Vec<usize>,
    right: Vec<usize>,
    all: Vec<usize>,
    best_left: Vec<usize>,
}

impl<'a> Engine<'a> {
    fn new(data: &'a Dataset, index: &'a ColumnarIndex) -> Self {
        assert_eq!(
            index.n_rows,
            data.len(),
            "index built for a different dataset"
        );
        assert_eq!(index.n_attributes, data.n_attributes());
        let k = data.n_classes();
        Engine {
            data,
            index,
            branch_of: vec![NO_BRANCH; index.n_rows],
            fb: FlatBaskets::new(k),
            dps: DpScratch::default(),
            ident: (0..k as u16).collect(),
            slot_of: (0..k as u16).collect(),
            n_slots: k,
            left: vec![0; k],
            right: vec![0; k],
            all: vec![0; k],
            best_left: vec![0; k],
        }
    }

    /// Root node: mark membership once, filter each presorted permutation.
    fn root(&mut self, rows: &[usize]) -> NodeRows {
        let mut member = vec![false; self.index.n_rows];
        for &r in rows {
            debug_assert!(!member[r], "duplicate row {r} in grow rows");
            member[r] = true;
        }
        let sorted = self
            .index
            .sorted
            .iter()
            .map(|perm| {
                perm.iter()
                    .copied()
                    .filter(|&r| member[r as usize])
                    .collect()
            })
            .collect();
        NodeRows {
            rows: rows.iter().map(|&r| r as u32).collect(),
            sorted,
        }
    }

    fn class_counts(&self, rows: &[u32]) -> Vec<usize> {
        let mut counts = vec![0usize; self.data.n_classes()];
        for &r in rows {
            counts[self.data.class(r as usize) as usize] += 1;
        }
        counts
    }

    /// Optimal sub-K-ary numeric split from the node's presorted rows:
    /// sweep → collapse → coarsen → interval DP, no sorting.
    fn numeric_optimal(
        &mut self,
        node: &NodeRows,
        slot: usize,
        attr: usize,
        max_branches: usize,
        imp: &dyn Impurity,
    ) -> Option<(SplitTest, f64)> {
        self.fb.fill(
            &node.sorted[slot],
            &self.index.values[slot],
            self.data,
            self.n_slots,
            &self.slot_of,
        );
        self.fb.coarsen(MAX_DP_BASKETS);
        if self.fb.len() < 2 {
            return None;
        }
        let s =
            interval_split_flat_in(&self.fb.counts, self.fb.k, max_branches, imp, &mut self.dps)?;
        if s.arity < 2 {
            return None;
        }
        let cuts: Vec<f64> = s
            .cut_after
            .iter()
            .map(|&i| midpoint(self.fb.uppers[i], self.fb.uppers[i + 1]))
            .collect();
        Some((SplitTest::NumRanges { attr, cuts }, s.impurity))
    }

    /// Per-value class histograms of a categorical attribute at this node:
    /// one counting pass over the code column.
    fn cat_hist(&self, node: &NodeRows, slot: usize) -> Vec<Vec<usize>> {
        let codes = &self.index.codes[slot];
        let mut hist = vec![vec![0usize; self.data.n_classes()]; self.index.cardinality[slot]];
        for &r in &node.rows {
            let code = codes[r as usize];
            if code != NO_CODE {
                hist[code as usize][self.data.class(r as usize) as usize] += 1;
            }
        }
        hist
    }

    /// NyuMiner's chooser ([`crate::split::best_split`]) over the index.
    fn best_split(
        &mut self,
        node: &NodeRows,
        max_branches: usize,
        imp: &dyn Impurity,
    ) -> Option<(SplitTest, f64)> {
        // Per-node class compression for the numeric DP: the cost kernels
        // are linear in histogram width, and absent classes contribute
        // nothing, so map the node's present classes (ascending) onto
        // dense slots and drop the rest. Exact for the stock impurities —
        // their kernels skip zero counts, so the sequence of nonzero terms
        // each cell folds is unchanged (see `cell_cost`). A custom
        // impurity sees full-width histograms via the identity map.
        let k = self.data.n_classes();
        if imp.as_any().is_some() {
            self.all.iter_mut().for_each(|c| *c = 0);
            for &r in &node.rows {
                self.all[self.data.class(r as usize) as usize] += 1;
            }
            let mut m = 0u16;
            for c in 0..k {
                self.slot_of[c] = m;
                if self.all[c] > 0 {
                    m += 1;
                }
            }
            self.n_slots = m as usize;
        } else {
            self.slot_of.copy_from_slice(&self.ident);
            self.n_slots = k;
        }

        let mut best: Option<(SplitTest, f64)> = None;
        for attr in 0..self.data.n_attributes() {
            let cand = if let Some(slot) = self.index.num_slot[attr] {
                self.numeric_optimal(node, slot, attr, max_branches, imp)
            } else {
                let slot = self.index.cat_slot[attr].unwrap();
                if self.index.cardinality[slot] < 2 {
                    None
                } else {
                    let hist = self.cat_hist(node, slot);
                    optimal_categorical_split_hist(
                        attr,
                        &hist,
                        self.data.n_classes(),
                        max_branches,
                        imp,
                    )
                }
            };
            if let Some((test, cost)) = cand {
                let better = match &best {
                    None => true,
                    Some((bt, bc)) => {
                        cost < bc - 1e-12 || (cost < bc + 1e-12 && test.arity() < bt.arity())
                    }
                };
                if better {
                    best = Some((test, cost));
                }
            }
        }
        best
    }

    /// C4.5's chooser ([`crate::split::c45_split`]) over the index.
    fn c45_split(&mut self, node: &NodeRows, parent: &[usize]) -> Option<(SplitTest, f64)> {
        let n_classes = self.data.n_classes();
        let parent_info = Entropy.of(parent);
        let mut best: Option<(SplitTest, f64)> = None;
        for attr in 0..self.data.n_attributes() {
            let cand: Option<(SplitTest, Vec<Vec<usize>>)> = if let Some(slot) =
                self.index.num_slot[attr]
            {
                // Best threshold by information gain, swept over the
                // collapsed boundary baskets with incremental left/right
                // histograms.
                self.fb.fill(
                    &node.sorted[slot],
                    &self.index.values[slot],
                    self.data,
                    n_classes,
                    &self.ident,
                );
                if self.fb.len() < 2 {
                    None
                } else {
                    for c in 0..n_classes {
                        self.left[c] = 0;
                        self.all[c] = (0..self.fb.len()).map(|i| self.fb.row(i)[c]).sum();
                    }
                    let mut best_t: Option<(f64, f64)> = None; // (gain, cut)
                    for i in 0..self.fb.len() - 1 {
                        for c in 0..n_classes {
                            self.left[c] += self.fb.row(i)[c];
                            self.right[c] = self.all[c] - self.left[c];
                        }
                        let g = info_gain_2way(parent_info, &self.left, &self.right);
                        if best_t.as_ref().is_none_or(|(bg, _)| g > *bg) {
                            self.best_left.clone_from_slice(&self.left);
                            best_t = Some((g, midpoint(self.fb.uppers[i], self.fb.uppers[i + 1])));
                        }
                    }
                    best_t.map(|(_, cut)| {
                        let right: Vec<usize> = (0..n_classes)
                            .map(|c| self.all[c] - self.best_left[c])
                            .collect();
                        (
                            SplitTest::NumRanges {
                                attr,
                                cuts: vec![cut],
                            },
                            vec![self.best_left.clone(), right],
                        )
                    })
                }
            } else {
                let slot = self.index.cat_slot[attr].unwrap();
                let arity = self.index.cardinality[slot];
                if arity < 2 {
                    None
                } else {
                    let parts = self.cat_hist(node, slot);
                    // At least two non-empty branches required.
                    let non_empty = parts.iter().filter(|p| p.iter().sum::<usize>() > 0).count();
                    if non_empty < 2 {
                        None
                    } else {
                        Some((SplitTest::CatEach { attr, arity }, parts))
                    }
                }
            };
            if let Some((test, parts)) = cand {
                let gain = information_gain(parent, &parts);
                if gain <= 1e-12 {
                    continue;
                }
                let gr = gain_ratio(parent, &parts);
                if best.as_ref().is_none_or(|(_, b)| gr > *b) {
                    best = Some((test, gr));
                }
            }
        }
        best
    }

    fn grow_node(
        &mut self,
        tree: &mut DecisionTree,
        node: NodeRows,
        rule: &GrowRule,
        config: &GrowConfig,
        depth: usize,
    ) -> usize {
        let class_counts = self.class_counts(&node.rows);
        let majority = plurality_class(&class_counts);
        let id = tree.nodes.len();
        tree.nodes.push(TreeNode {
            class_counts: class_counts.clone(),
            majority,
            split: None,
            default_branch: 0,
            depth,
            n_rows: node.rows.len(),
        });

        let pure = class_counts.iter().filter(|&&n| n > 0).count() <= 1;
        if pure || node.rows.len() < config.min_split || depth >= config.max_depth {
            return id;
        }

        let chosen = match rule {
            GrowRule::NyuMiner {
                max_branches,
                impurity,
            } => self.best_split(&node, *max_branches, *impurity),
            GrowRule::Cart => self.best_split(&node, 2, &Gini),
            GrowRule::C45 => self.c45_split(&node, &class_counts),
        };
        let Some((test, _)) = chosen else {
            return id;
        };

        // Partition rows; missing values go to the largest branch (last
        // one on ties, matching the classic path), appended after the
        // branch's own rows.
        let arity = test.arity();
        let mut parts: Vec<Vec<u32>> = vec![Vec::new(); arity];
        let mut missing: Vec<u32> = Vec::new();
        for &r in &node.rows {
            match test.branch(self.data, r as usize) {
                Some(b) => {
                    self.branch_of[r as usize] = b as u16;
                    parts[b].push(r);
                }
                None => {
                    self.branch_of[r as usize] = NO_BRANCH;
                    missing.push(r);
                }
            }
        }
        let mut default_branch = 0;
        for (i, p) in parts.iter().enumerate() {
            if p.len() >= parts[default_branch].len() {
                default_branch = i;
            }
        }
        for &r in &missing {
            self.branch_of[r as usize] = default_branch as u16;
        }
        parts[default_branch].extend_from_slice(&missing);

        // A degenerate split (all rows in one branch) cannot make
        // progress; stop.
        if parts.iter().filter(|p| !p.is_empty()).count() < 2 {
            return id;
        }

        // Stably partition every presorted list into the children in one
        // pass — this is what replaces the classic path's per-node sort.
        let n_slots = node.sorted.len();
        let mut children_rows: Vec<NodeRows> = parts
            .into_iter()
            .map(|p| NodeRows {
                rows: p,
                sorted: vec![Vec::new(); n_slots],
            })
            .collect();
        for (slot, perm) in node.sorted.iter().enumerate() {
            for &r in perm {
                let b = self.branch_of[r as usize] as usize;
                children_rows[b].sorted[slot].push(r);
            }
        }
        drop(node);

        let mut children = Vec::with_capacity(arity);
        for child in children_rows {
            children.push(self.grow_node(tree, child, rule, config, depth + 1));
        }
        tree.nodes[id].split = Some((test, children));
        tree.nodes[id].default_branch = default_branch;
        id
    }
}

/// Plurality class of a histogram with the classic path's tie rule
/// (`max_by_key` keeps the *last* maximum).
fn plurality_class(counts: &[usize]) -> u16 {
    let mut majority = 0u16;
    let mut best = 0usize;
    let mut any = false;
    for (c, &n) in counts.iter().enumerate() {
        if !any || n >= best {
            majority = c as u16;
            best = n;
            any = true;
        }
    }
    majority
}

/// Two-partition information gain, bit-identical to
/// `information_gain(parent, &[left, right])` without materialising the
/// partition `Vec`s.
fn info_gain_2way(parent_info: f64, left: &[usize], right: &[usize]) -> f64 {
    let nl: usize = left.iter().sum();
    let nr: usize = right.iter().sum();
    let total = nl + nr;
    if total == 0 {
        return parent_info;
    }
    // Same fold order as `Impurity::aggregate`'s iterator sum.
    let agg: f64 = [
        nl as f64 / total as f64 * Entropy.of(left),
        nr as f64 / total as f64 * Entropy.of(right),
    ]
    .into_iter()
    .sum();
    parent_info - agg
}

/// Grow a tree over `rows` using a prebuilt [`ColumnarIndex`] — the
/// engine behind [`DecisionTree::grow_indexed`].
///
/// `rows` must be distinct row ids of the dataset the index was built
/// from (every caller in this codebase passes disjoint subsets).
pub(crate) fn grow(
    data: &Dataset,
    index: &ColumnarIndex,
    rows: &[usize],
    rule: &GrowRule,
    config: &GrowConfig,
) -> DecisionTree {
    let mut tree = DecisionTree {
        nodes: Vec::new(),
        n_train: rows.len(),
    };
    let mut eng = Engine::new(data, index);
    let root = eng.root(rows);
    eng.grow_node(&mut tree, root, rule, config, 0);
    tree
}

/// The columnar engine's split chooser for a single node, NyuMiner form —
/// exposed for the equivalence suite and benches: must agree exactly with
/// [`crate::split::best_split`] on the same rows.
pub fn columnar_best_split(
    data: &Dataset,
    index: &ColumnarIndex,
    rows: &[usize],
    max_branches: usize,
    imp: &dyn Impurity,
) -> Option<(SplitTest, f64)> {
    let mut eng = Engine::new(data, index);
    let node = eng.root(rows);
    eng.best_split(&node, max_branches, imp)
}

/// The columnar engine's split chooser for a single node, C4.5 form —
/// must agree exactly with [`crate::split::c45_split`] on the same rows.
pub fn columnar_c45_split(
    data: &Dataset,
    index: &ColumnarIndex,
    rows: &[usize],
) -> Option<(SplitTest, f64)> {
    let mut eng = Engine::new(data, index);
    let node = eng.root(rows);
    let parent = eng.class_counts(&node.rows);
    eng.c45_split(&node, &parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::fixtures::heart;
    use crate::split::{best_split, c45_split};
    use crate::tree::GrowConfig;

    fn rules() -> Vec<GrowRule<'static>> {
        vec![
            GrowRule::NyuMiner {
                max_branches: 3,
                impurity: &Gini,
            },
            GrowRule::NyuMiner {
                max_branches: 4,
                impurity: &Entropy,
            },
            GrowRule::Cart,
            GrowRule::C45,
        ]
    }

    #[test]
    fn columnar_trees_match_reference_on_heart() {
        let d = heart();
        let index = ColumnarIndex::build(&d);
        for rule in rules() {
            let a = DecisionTree::grow_reference(&d, &d.all_rows(), &rule, &GrowConfig::default());
            let b = grow(&d, &index, &d.all_rows(), &rule, &GrowConfig::default());
            assert_eq!(a, b);
        }
    }

    #[test]
    fn columnar_choosers_match_reference_on_subsets() {
        let d = heart();
        let index = ColumnarIndex::build(&d);
        let subsets: Vec<Vec<usize>> = vec![d.all_rows(), vec![0, 2, 3, 5], vec![1, 4]];
        for rows in subsets {
            assert_eq!(
                best_split(&d, &rows, 3, &Gini),
                columnar_best_split(&d, &index, &rows, 3, &Gini),
                "rows {rows:?}"
            );
            assert_eq!(
                c45_split(&d, &rows),
                columnar_c45_split(&d, &index, &rows),
                "rows {rows:?}"
            );
        }
    }

    #[test]
    fn missing_values_follow_reference_partition() {
        let d = Dataset::new(
            vec![crate::data::Attribute::Numeric { name: "x".into() }],
            vec![vec![
                AttrValue::Num(0.0),
                AttrValue::Num(0.0),
                AttrValue::Num(0.0),
                AttrValue::Num(10.0),
                AttrValue::Missing,
            ]],
            vec![0, 0, 0, 1, 0],
            vec!["a".into(), "b".into()],
        );
        let index = ColumnarIndex::build(&d);
        let a = DecisionTree::grow_reference(
            &d,
            &d.all_rows(),
            &GrowRule::Cart,
            &GrowConfig::default(),
        );
        let b = grow(
            &d,
            &index,
            &d.all_rows(),
            &GrowRule::Cart,
            &GrowConfig::default(),
        );
        assert_eq!(a, b);
    }
}
