//! Training data for classification-tree learning (§5.1).
//!
//! A training set is a set of data elements, each with values of a number
//! of independent variables (attributes) — categorical (finite unordered
//! domain) or numerical (ordered) — plus a class label (the dependent
//! variable). Attribute values may be missing, as in the `mushrooms` and
//! `vote` benchmark datasets (Table 5.2).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One attribute value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttrValue {
    /// Numerical value.
    Num(f64),
    /// Categorical value index (into the attribute's domain).
    Cat(u16),
    /// Missing.
    Missing,
}

impl AttrValue {
    /// Is this value missing?
    pub fn is_missing(&self) -> bool {
        matches!(self, AttrValue::Missing)
    }
}

/// Attribute schema.
#[derive(Debug, Clone)]
pub enum Attribute {
    /// Ordered numeric attribute.
    Numeric {
        /// Display name.
        name: String,
    },
    /// Unordered categorical attribute with a fixed domain.
    Categorical {
        /// Display name.
        name: String,
        /// Domain value names; categorical values index this list.
        values: Vec<String>,
    },
}

impl Attribute {
    /// The attribute's display name.
    pub fn name(&self) -> &str {
        match self {
            Attribute::Numeric { name } | Attribute::Categorical { name, .. } => name,
        }
    }

    /// Is this attribute numeric?
    pub fn is_numeric(&self) -> bool {
        matches!(self, Attribute::Numeric { .. })
    }

    /// Domain size (categorical only).
    pub fn cardinality(&self) -> usize {
        match self {
            Attribute::Numeric { .. } => 0,
            Attribute::Categorical { values, .. } => values.len(),
        }
    }
}

/// A column-major training table.
#[derive(Debug, Clone)]
pub struct Dataset {
    attributes: Vec<Attribute>,
    /// `columns[a][row]` is row `row`'s value of attribute `a`.
    columns: Vec<Vec<AttrValue>>,
    /// Class label per row.
    classes: Vec<u16>,
    class_names: Vec<String>,
}

impl Dataset {
    /// Build a dataset; all columns and the class vector must agree in
    /// length, and class labels must index `class_names`.
    pub fn new(
        attributes: Vec<Attribute>,
        columns: Vec<Vec<AttrValue>>,
        classes: Vec<u16>,
        class_names: Vec<String>,
    ) -> Self {
        assert_eq!(attributes.len(), columns.len(), "schema/column mismatch");
        for (a, col) in columns.iter().enumerate() {
            assert_eq!(col.len(), classes.len(), "column {a} length mismatch");
        }
        assert!(
            classes.iter().all(|&c| (c as usize) < class_names.len()),
            "class label out of range"
        );
        Dataset {
            attributes,
            columns,
            classes,
            class_names,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Is the dataset empty?
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Attribute schemas.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Number of attributes.
    pub fn n_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Class display names.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Value of attribute `attr` in row `row`.
    pub fn value(&self, row: usize, attr: usize) -> AttrValue {
        self.columns[attr][row]
    }

    /// Class of row `row`.
    pub fn class(&self, row: usize) -> u16 {
        self.classes[row]
    }

    /// All row indices.
    pub fn all_rows(&self) -> Vec<usize> {
        (0..self.len()).collect()
    }

    /// Class histogram over `rows`.
    pub fn class_counts(&self, rows: &[usize]) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes()];
        for &r in rows {
            counts[self.classes[r] as usize] += 1;
        }
        counts
    }

    /// The plurality class over `rows` and its frequency share (the
    /// "plurality rule" baseline of Table 5.3).
    pub fn plurality(&self, rows: &[usize]) -> (u16, f64) {
        let counts = self.class_counts(rows);
        let (best, n) = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &n)| n)
            .map(|(c, &n)| (c as u16, n))
            .unwrap_or((0, 0));
        (best, n as f64 / rows.len().max(1) as f64)
    }

    /// Fraction of cells that are missing.
    pub fn missing_rate(&self) -> f64 {
        let cells = self.len() * self.n_attributes();
        if cells == 0 {
            return 0.0;
        }
        let missing: usize = self
            .columns
            .iter()
            .map(|c| c.iter().filter(|v| v.is_missing()).count())
            .sum();
        missing as f64 / cells as f64
    }

    /// Fraction of rows with at least one missing value.
    pub fn rows_with_missing(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let n = (0..self.len())
            .filter(|&r| (0..self.n_attributes()).any(|a| self.value(r, a).is_missing()))
            .count();
        n as f64 / self.len() as f64
    }

    /// The §5.5.2 splitting protocol: divide into two nearly-equal halves
    /// *preserving the class distribution* — partition rows into per-class
    /// baskets, shuffle each basket, send odd-indexed elements to one half
    /// and even-indexed to the other.
    pub fn stratified_halves(&self, seed: u64) -> (Vec<usize>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut first = Vec::new();
        let mut second = Vec::new();
        for class in 0..self.n_classes() as u16 {
            let mut basket: Vec<usize> = (0..self.len())
                .filter(|&r| self.classes[r] == class)
                .collect();
            basket.shuffle(&mut rng);
            for (i, r) in basket.into_iter().enumerate() {
                if i % 2 == 0 {
                    first.push(r);
                } else {
                    second.push(r);
                }
            }
        }
        first.sort_unstable();
        second.sort_unstable();
        (first, second)
    }

    /// Random `v`-fold partition of `rows` (for cross validation),
    /// near-equal sizes.
    pub fn folds(&self, rows: &[usize], v: usize, seed: u64) -> Vec<Vec<usize>> {
        assert!(v >= 2, "cross validation needs at least 2 folds");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut shuffled = rows.to_vec();
        shuffled.shuffle(&mut rng);
        let mut folds = vec![Vec::new(); v];
        for (i, r) in shuffled.into_iter().enumerate() {
            folds[i % v].push(r);
        }
        folds
    }
}

/// A trained classifier over a [`Dataset`] schema.
pub trait Classifier {
    /// Predict the class of `row` in `data` (which must share the schema
    /// the classifier was trained on).
    fn predict(&self, data: &Dataset, row: usize) -> u16;

    /// Fraction of `rows` classified correctly.
    fn accuracy(&self, data: &Dataset, rows: &[usize]) -> f64 {
        if rows.is_empty() {
            return 0.0;
        }
        let correct = rows
            .iter()
            .filter(|&&r| self.predict(data, r) == data.class(r))
            .count();
        correct as f64 / rows.len() as f64
    }
}

#[cfg(test)]
pub(crate) mod fixtures {
    use super::*;

    /// The imaginary heart-disease table of Table 2.1 (without Karp).
    pub fn heart() -> Dataset {
        let attributes = vec![
            Attribute::Numeric {
                name: "weight".into(),
            },
            Attribute::Numeric { name: "age".into() },
            Attribute::Categorical {
                name: "bp".into(),
                values: vec!["low".into(), "med".into(), "high".into()],
            },
        ];
        let weight = [180.0, 140.0, 150.0, 150.0, 150.0, 150.0]
            .iter()
            .map(|&w| AttrValue::Num(w))
            .collect();
        let age = [27.0, 20.0, 30.0, 31.0, 35.0, 62.0]
            .iter()
            .map(|&a| AttrValue::Num(a))
            .collect();
        let bp = [0u16, 0, 1, 0, 2, 0]
            .iter()
            .map(|&b| AttrValue::Cat(b))
            .collect();
        // Jihai yes, Tom no, Hansoo no, Peter no, Bin yes, Dennis yes.
        let classes = vec![1, 0, 0, 0, 1, 1];
        Dataset::new(
            attributes,
            vec![weight, age, bp],
            classes,
            vec!["no".into(), "yes".into()],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::heart;
    use super::*;

    #[test]
    fn basic_accessors() {
        let d = heart();
        assert_eq!(d.len(), 6);
        assert_eq!(d.n_attributes(), 3);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.class_counts(&d.all_rows()), vec![3, 3]);
        assert_eq!(d.value(0, 0), AttrValue::Num(180.0));
        assert_eq!(d.value(4, 2), AttrValue::Cat(2));
    }

    #[test]
    fn plurality_and_missing() {
        let d = heart();
        let (_, share) = d.plurality(&d.all_rows());
        assert!((share - 0.5).abs() < 1e-12);
        assert_eq!(d.missing_rate(), 0.0);
        assert_eq!(d.rows_with_missing(), 0.0);
    }

    #[test]
    fn stratified_halves_preserve_distribution() {
        let d = heart();
        let (a, b) = d.stratified_halves(42);
        assert_eq!(a.len() + b.len(), 6);
        // Each half holds half of each class basket (sizes 3 -> 2+1).
        let ca = d.class_counts(&a);
        let cb = d.class_counts(&b);
        for c in 0..2 {
            assert!(ca[c].abs_diff(cb[c]) <= 1, "class {c}: {ca:?} vs {cb:?}");
        }
        // Disjoint and covering.
        let mut all: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, d.all_rows());
    }

    #[test]
    fn folds_partition_rows() {
        let d = heart();
        let folds = d.folds(&d.all_rows(), 3, 7);
        assert_eq!(folds.len(), 3);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, d.all_rows());
        for f in &folds {
            assert_eq!(f.len(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_columns_rejected() {
        Dataset::new(
            vec![Attribute::Numeric { name: "x".into() }],
            vec![vec![AttrValue::Num(1.0)]],
            vec![0, 0],
            vec!["a".into()],
        );
    }
}
