//! `xtask` — workspace maintenance tasks, chiefly **`lint-templates`**:
//! a static shape lint for tuple-space programs.
//!
//! Linda decouples producers from consumers: an `in`/`rd` names only a
//! [`Template`] shape, and nothing at compile time ties that shape to any
//! `out`. A one-field typo — wrong arity, `int()` where the producer sends
//! a real, a misspelled channel head — compiles fine and then blocks
//! forever at runtime. This lint closes that gap textually: it scans every
//! `.rs` file in the workspace, extracts the *shape* of each literal
//! `Template::new(vec![...])` site and each `tup![...]` / `Tuple::new`
//! production site, and fails on any template whose shape no production in
//! the entire workspace could ever match.
//!
//! The lint is deliberately conservative, in the direction of no false
//! positives:
//!
//! * Non-literal constructions (`Template::new(fs)` in the channel layer,
//!   heads built with `format!`) are counted but skipped — dynamic shapes
//!   are the runtime trace checkers' job (`plinda::check`).
//! * Any field or element the lint cannot classify is a wildcard that
//!   matches everything.
//! * Productions that no template matches are reported as a count, not a
//!   failure: many `out`s are consumed through dynamically-built channel
//!   templates.
//!
//! Run it with `cargo run -p xtask -- lint-templates`.
//!
//! [`Template`]: https://docs.rs/plinda — see `crates/tuplespace`.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A concrete tuple-field type, mirroring `plinda::TypeTag`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tag {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Real,
    /// String.
    Str,
    /// Byte array (also the packed form of numeric vectors).
    Bytes,
    /// Nested list of values.
    List,
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tag::Int => "int",
            Tag::Real => "real",
            Tag::Str => "str",
            Tag::Bytes => "bytes",
            Tag::List => "list",
        };
        f.write_str(s)
    }
}

/// The shape of one field of a template site.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldShape {
    /// `field::val("head")` — an exact string the producer must emit.
    LitStr(String),
    /// `field::val(7)` — an exact integer (value not tracked, tag is).
    LitInt,
    /// A formal field: `field::int()`, `field::of(TypeTag::Real)`, …
    Tag(Tag),
    /// Unclassifiable (an expression): matches anything.
    Any,
}

impl fmt::Display for FieldShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldShape::LitStr(s) => write!(f, "{s:?}"),
            FieldShape::LitInt => f.write_str("=int"),
            FieldShape::Tag(t) => write!(f, "{t}"),
            FieldShape::Any => f.write_str("_"),
        }
    }
}

/// The shape of one element of a production site.
#[derive(Debug, Clone, PartialEq)]
pub enum ElemShape {
    /// A string literal — the produced tuple's head/content is known.
    LitStr(String),
    /// A literal whose type tag is known but value is not tracked.
    Tag(Tag),
    /// An arbitrary expression: could produce any value.
    Any,
}

impl fmt::Display for ElemShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElemShape::LitStr(s) => write!(f, "{s:?}"),
            ElemShape::Tag(t) => write!(f, "{t}"),
            ElemShape::Any => f.write_str("_"),
        }
    }
}

/// One extracted site: where it is and what shape it has.
#[derive(Debug, Clone)]
pub struct Site<S> {
    /// Source file, relative to the lint root.
    pub file: PathBuf,
    /// 1-based line of the construction.
    pub line: usize,
    /// Extracted field/element shapes.
    pub shape: Vec<S>,
}

impl<S: fmt::Display> Site<S> {
    fn render(&self) -> String {
        let fields: Vec<String> = self.shape.iter().map(|s| s.to_string()).collect();
        format!(
            "{}:{} ({})",
            self.file.display(),
            self.line,
            fields.join(", ")
        )
    }
}

/// Result of [`lint_dir`].
#[derive(Debug, Default)]
pub struct LintReport {
    /// Literal template sites that were shape-checked.
    pub templates: usize,
    /// Template sites skipped because their construction is dynamic.
    pub dynamic_templates: usize,
    /// Production sites extracted.
    pub productions: usize,
    /// Templates that **no** production in the tree could match — the
    /// failure condition.
    pub unmatched: Vec<Site<FieldShape>>,
    /// Productions no literal template matches (informational: most are
    /// consumed via dynamically-built channel templates).
    pub orphan_productions: usize,
}

impl LintReport {
    /// Did every checked template have at least one compatible producer?
    pub fn is_clean(&self) -> bool {
        self.unmatched.is_empty()
    }

    /// Human-readable summary (one line per unmatched template).
    pub fn render(&self) -> String {
        let mut out = format!(
            "lint-templates: {} template site(s) checked ({} dynamic skipped), \
             {} production site(s), {} orphan production(s)\n",
            self.templates, self.dynamic_templates, self.productions, self.orphan_productions
        );
        if self.unmatched.is_empty() {
            out.push_str("OK: every template shape has a compatible producer\n");
        } else {
            for t in &self.unmatched {
                out.push_str(&format!(
                    "ERROR: template at {} matches no production in the workspace\n",
                    t.render()
                ));
            }
        }
        out
    }
}

/// Can a tuple produced at `e` satisfy template field `f`?
fn field_matches(f: &FieldShape, e: &ElemShape) -> bool {
    match (f, e) {
        (FieldShape::Any, _) | (_, ElemShape::Any) => true,
        (FieldShape::LitStr(a), ElemShape::LitStr(b)) => a == b,
        (FieldShape::LitStr(_), ElemShape::Tag(_)) => false,
        (FieldShape::LitInt, ElemShape::Tag(Tag::Int)) => true,
        (FieldShape::LitInt, _) => false,
        (FieldShape::Tag(t), ElemShape::LitStr(_)) => *t == Tag::Str,
        (FieldShape::Tag(t), ElemShape::Tag(u)) => t == u,
    }
}

/// Can production `p` ever satisfy template `t`? (Same arity, every field
/// compatible.)
pub fn shapes_compatible(t: &[FieldShape], p: &[ElemShape]) -> bool {
    t.len() == p.len() && t.iter().zip(p).all(|(f, e)| field_matches(f, e))
}

// ---------------------------------------------------------------------------
// Source scanning
// ---------------------------------------------------------------------------

/// Blank out `//`/`/* */` comments (preserving newlines so line numbers
/// survive) while leaving string literals intact.
fn strip_comments(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => {
                // String literal: copy verbatim through the closing quote.
                out.push(bytes[i]);
                i += 1;
                while i < bytes.len() {
                    out.push(bytes[i]);
                    match bytes[i] {
                        b'\\' if i + 1 < bytes.len() => {
                            out.push(bytes[i + 1]);
                            i += 2;
                            continue;
                        }
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let mut depth = 1;
                out.extend_from_slice(b"  ");
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Index just past the delimiter that balances the one at `open` (which
/// must be `(`/`[`/`{`), skipping string literals.
fn balanced_end(src: &str, open: usize) -> Option<usize> {
    let bytes = src.as_bytes();
    let (oc, cc) = match bytes[open] {
        b'(' => (b'(', b')'),
        b'[' => (b'[', b']'),
        b'{' => (b'{', b'}'),
        _ => return None,
    };
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => {
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 1,
                        b'"' => break,
                        _ => {}
                    }
                    i += 1;
                }
            }
            b if b == oc => depth += 1,
            b if b == cc => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Split `src` on commas at bracket depth zero, skipping string literals.
fn split_top_commas(src: &str) -> Vec<&str> {
    let bytes = src.as_bytes();
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => {
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 1,
                        b'"' => break,
                        _ => {}
                    }
                    i += 1;
                }
            }
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth = depth.saturating_sub(1),
            b',' if depth == 0 => {
                parts.push(&src[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    if start < src.len() {
        parts.push(&src[start..]);
    }
    parts.into_iter().filter(|p| !p.trim().is_empty()).collect()
}

fn is_string_literal(s: &str) -> Option<String> {
    let s = s.trim();
    let s = s.strip_suffix(".to_string()").unwrap_or(s);
    let inner = s.strip_prefix('"')?.strip_suffix('"')?;
    // Reject `"a" + x + "b"`-style expressions: no bare quote inside.
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                chars.next();
            }
            '"' => return None,
            _ => {}
        }
    }
    Some(inner.to_string())
}

fn is_int_literal(s: &str) -> bool {
    let s = s.trim();
    let s = s.strip_prefix('-').unwrap_or(s).trim();
    for suffix in ["i64", "i32", "usize", "u64", "u32", "u8"] {
        if let Some(head) = s.strip_suffix(suffix) {
            return !head.is_empty() && head.bytes().all(|b| b.is_ascii_digit() || b == b'_');
        }
    }
    !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit() || b == b'_')
}

fn is_float_literal(s: &str) -> bool {
    let s = s.trim();
    let s = s.strip_prefix('-').unwrap_or(s).trim();
    let s = s.strip_suffix("f64").unwrap_or(s);
    match s.split_once('.') {
        Some((a, b)) => {
            !a.is_empty()
                && a.bytes().all(|c| c.is_ascii_digit() || c == b'_')
                && b.bytes().all(|c| c.is_ascii_digit() || c == b'_')
        }
        None => false,
    }
}

/// Classify one element of a `Template::new(vec![...])` field list.
fn template_field(elem: &str) -> FieldShape {
    let e = elem.trim();
    // Tolerate path prefixes: `crate::field::int()`, `plinda::field::...`.
    let e = match e.find("field::") {
        Some(pos) => &e[pos..],
        None => return FieldShape::Any,
    };
    if let Some(rest) = e.strip_prefix("field::val(") {
        let inner = rest.strip_suffix(')').unwrap_or(rest);
        if let Some(s) = is_string_literal(inner) {
            return FieldShape::LitStr(s);
        }
        if is_int_literal(inner) {
            return FieldShape::LitInt;
        }
        return FieldShape::Any;
    }
    if let Some(rest) = e.strip_prefix("field::of(") {
        for (name, tag) in [
            ("Int", Tag::Int),
            ("Real", Tag::Real),
            ("Str", Tag::Str),
            ("Bytes", Tag::Bytes),
            ("List", Tag::List),
        ] {
            if rest.contains(name) {
                return FieldShape::Tag(tag);
            }
        }
        return FieldShape::Any;
    }
    match e.trim() {
        "field::int()" => FieldShape::Tag(Tag::Int),
        "field::real()" => FieldShape::Tag(Tag::Real),
        "field::str()" => FieldShape::Tag(Tag::Str),
        "field::bytes()" => FieldShape::Tag(Tag::Bytes),
        "field::list()" => FieldShape::Tag(Tag::List),
        _ => FieldShape::Any,
    }
}

/// Classify one element of a `tup![...]` / `Tuple::new(vec![...])` body.
fn production_elem(elem: &str) -> ElemShape {
    let e = elem.trim();
    if let Some(s) = is_string_literal(e) {
        return ElemShape::LitStr(s);
    }
    if is_int_literal(e) {
        return ElemShape::Tag(Tag::Int);
    }
    if is_float_literal(e) {
        return ElemShape::Tag(Tag::Real);
    }
    // Explicit Value constructors (used by direct `Tuple::new` sites).
    for (name, tag) in [
        ("Value::Int", Tag::Int),
        ("Value::Real", Tag::Real),
        ("Value::Str", Tag::Str),
        ("Value::Bytes", Tag::Bytes),
        ("Value::List", Tag::List),
    ] {
        if e.contains(name) {
            return ElemShape::Tag(tag);
        }
    }
    if e.starts_with("vec![") {
        // `Vec<u8>` converts to Bytes; anything else we leave open.
        if e.contains("u8") {
            return ElemShape::Tag(Tag::Bytes);
        }
        return ElemShape::Any;
    }
    ElemShape::Any
}

fn line_of(src: &str, offset: usize) -> usize {
    src[..offset].bytes().filter(|&b| b == b'\n').count() + 1
}

/// Everything extracted from one file.
#[derive(Debug, Default)]
pub struct FileSites {
    /// Literal template sites.
    pub templates: Vec<Site<FieldShape>>,
    /// Template sites whose argument is not a `vec![...]` literal.
    pub dynamic_templates: usize,
    /// Production sites.
    pub productions: Vec<Site<ElemShape>>,
}

/// Extract template and production sites from one file's source text.
pub fn scan_source(rel: &Path, src: &str) -> FileSites {
    let clean = strip_comments(src);
    let mut sites = FileSites::default();

    // Template::new(vec![ ... ])
    let mut from = 0;
    while let Some(pos) = clean[from..].find("Template::new(") {
        let at = from + pos;
        let open = at + "Template::new".len();
        from = open;
        let Some(end) = balanced_end(&clean, open) else {
            continue;
        };
        let arg = clean[open + 1..end - 1].trim();
        let Some(rest) = arg.strip_prefix("vec!") else {
            sites.dynamic_templates += 1;
            continue;
        };
        let body = rest
            .trim()
            .strip_prefix('[')
            .and_then(|r| r.strip_suffix(']'));
        let Some(body) = body else {
            sites.dynamic_templates += 1;
            continue;
        };
        let shape: Vec<FieldShape> = split_top_commas(body)
            .iter()
            .map(|e| template_field(e))
            .collect();
        sites.templates.push(Site {
            file: rel.to_path_buf(),
            line: line_of(&clean, at),
            shape,
        });
    }

    // tup![ ... ]
    let mut from = 0;
    while let Some(pos) = clean[from..].find("tup!") {
        let at = from + pos;
        from = at + 4;
        // Require a macro-name boundary so e.g. `setup!` is not matched.
        if at > 0 && clean.as_bytes()[at - 1].is_ascii_alphanumeric() {
            continue;
        }
        let Some(open) = clean[at + 4..].find('[').map(|o| at + 4 + o) else {
            continue;
        };
        if !clean[at + 4..open].trim().is_empty() {
            continue; // something other than whitespace before the bracket
        }
        let Some(end) = balanced_end(&clean, open) else {
            continue;
        };
        let body = &clean[open + 1..end - 1];
        let shape: Vec<ElemShape> = split_top_commas(body)
            .iter()
            .map(|e| production_elem(e))
            .collect();
        sites.productions.push(Site {
            file: rel.to_path_buf(),
            line: line_of(&clean, at),
            shape,
        });
    }

    // Tuple::new(vec![ ... ])
    let mut from = 0;
    while let Some(pos) = clean[from..].find("Tuple::new(") {
        let at = from + pos;
        let open = at + "Tuple::new".len();
        from = open;
        let Some(end) = balanced_end(&clean, open) else {
            continue;
        };
        let arg = clean[open + 1..end - 1].trim();
        let Some(body) = arg
            .strip_prefix("vec!")
            .and_then(|r| r.trim().strip_prefix('['))
            .and_then(|r| r.strip_suffix(']'))
        else {
            continue; // dynamic construction; not a checkable producer
        };
        let shape: Vec<ElemShape> = split_top_commas(body)
            .iter()
            .map(|e| production_elem(e))
            .collect();
        sites.productions.push(Site {
            file: rel.to_path_buf(),
            line: line_of(&clean, at),
            shape,
        });
    }

    sites
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // The linter exempts itself: its sources and tests quote
            // template/production syntax inside string fixtures.
            if name == "target" || name == "vendor" || name.starts_with('.') || name == "xtask" {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every `.rs` file under `root` (skipping `target/`, `vendor/`,
/// hidden directories, and the linter's own sources).
pub fn lint_dir(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();

    let mut templates: Vec<Site<FieldShape>> = Vec::new();
    let mut productions: Vec<Site<ElemShape>> = Vec::new();
    let mut report = LintReport::default();
    for path in &files {
        let src = fs::read_to_string(path)?;
        let rel = path.strip_prefix(root).unwrap_or(path);
        let sites = scan_source(rel, &src);
        report.dynamic_templates += sites.dynamic_templates;
        templates.extend(sites.templates);
        productions.extend(sites.productions);
    }
    report.templates = templates.len();
    report.productions = productions.len();

    let mut matched_prod = vec![false; productions.len()];
    for t in &templates {
        let mut matched = false;
        for (i, p) in productions.iter().enumerate() {
            if shapes_compatible(&t.shape, &p.shape) {
                matched = true;
                matched_prod[i] = true;
            }
        }
        if !matched {
            report.unmatched.push(t.clone());
        }
    }
    report.orphan_productions = matched_prod.iter().filter(|&&m| !m).count();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_template_fields() {
        assert_eq!(
            template_field(r#" field::val("task") "#),
            FieldShape::LitStr("task".into())
        );
        assert_eq!(template_field(" field::val(3) "), FieldShape::LitInt);
        assert_eq!(template_field("field::int()"), FieldShape::Tag(Tag::Int));
        assert_eq!(
            template_field("crate::field::real()"),
            FieldShape::Tag(Tag::Real)
        );
        assert_eq!(
            template_field("field::of(TypeTag::Bytes)"),
            FieldShape::Tag(Tag::Bytes)
        );
        assert_eq!(template_field("field::val(name)"), FieldShape::Any);
        assert_eq!(template_field("mystery()"), FieldShape::Any);
    }

    #[test]
    fn classifies_production_elems() {
        assert_eq!(
            production_elem(r#" "task" "#),
            ElemShape::LitStr("task".into())
        );
        assert_eq!(production_elem("-1i64"), ElemShape::Tag(Tag::Int));
        assert_eq!(production_elem("3.25"), ElemShape::Tag(Tag::Real));
        assert_eq!(production_elem("vec![9u8]"), ElemShape::Tag(Tag::Bytes));
        assert_eq!(production_elem("100 - i"), ElemShape::Any);
        assert_eq!(production_elem("t.int(1)"), ElemShape::Any);
    }

    #[test]
    fn compatibility_respects_heads_arity_and_tags() {
        let t = vec![FieldShape::LitStr("task".into()), FieldShape::Tag(Tag::Int)];
        let good = vec![ElemShape::LitStr("task".into()), ElemShape::Tag(Tag::Int)];
        let wild = vec![ElemShape::LitStr("task".into()), ElemShape::Any];
        let wrong_head = vec![ElemShape::LitStr("done".into()), ElemShape::Tag(Tag::Int)];
        let wrong_tag = vec![ElemShape::LitStr("task".into()), ElemShape::Tag(Tag::Real)];
        let wrong_arity = vec![ElemShape::LitStr("task".into())];
        assert!(shapes_compatible(&t, &good));
        assert!(shapes_compatible(&t, &wild));
        assert!(!shapes_compatible(&t, &wrong_head));
        assert!(!shapes_compatible(&t, &wrong_tag));
        assert!(!shapes_compatible(&t, &wrong_arity));
    }

    #[test]
    fn scans_multiline_sites_and_ignores_comments() {
        let src = r#"
            // Template::new(vec![field::val("commented-out")])
            let t = Template::new(vec![
                field::val("job"),
                field::int(),
            ]);
            space.out(tup!["job", 7]);
        "#;
        let sites = scan_source(Path::new("x.rs"), src);
        assert_eq!(sites.templates.len(), 1);
        assert_eq!(sites.templates[0].line, 3);
        assert_eq!(sites.productions.len(), 1);
        assert!(shapes_compatible(
            &sites.templates[0].shape,
            &sites.productions[0].shape
        ));
    }

    #[test]
    fn dynamic_template_construction_is_skipped_not_flagged() {
        let src = "let t = Template::new(fs);";
        let sites = scan_source(Path::new("x.rs"), src);
        assert!(sites.templates.is_empty());
        assert_eq!(sites.dynamic_templates, 1);
    }
}
