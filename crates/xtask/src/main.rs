//! Workspace task runner. Two tasks:
//!
//! ```text
//! cargo run -p xtask -- lint-templates [ROOT]
//! cargo run --release -p xtask -- metrics-smoke
//! ```
//!
//! `lint-templates` exits non-zero if any tuple-space template in the
//! tree is unmatchable (see the crate docs for the analysis).
//!
//! `metrics-smoke` is the CI observability gate: it runs a small metered
//! task farm, validates the resulting `MetricsSnapshot` against the
//! frozen golden schema (decode, round-trip, cross-layer invariants),
//! and measures that the metrics-*off* tuple-space fast path costs no
//! more than the documented envelope (~100 ns/event) over a space that
//! never had a registry installed. Run it under `--release`; debug
//! timings are dominated by unoptimised match code.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use plinda::metrics::check_snapshot;
use plinda::{
    field, tup, FarmConfig, MetricsRegistry, MetricsSnapshot, TaskFarm, Template, TupleSpace,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint-templates") => {
            let root = args
                .get(1)
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));
            match xtask::lint_dir(&root) {
                Ok(report) => {
                    print!("{}", report.render());
                    if report.is_clean() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("lint-templates: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("metrics-smoke") => metrics_smoke(),
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- lint-templates [ROOT]\n       \
                 cargo run --release -p xtask -- metrics-smoke"
            );
            ExitCode::from(2)
        }
    }
}

/// Per-event cost envelope for the metrics-disabled fast path (one
/// relaxed atomic load), in nanoseconds. DESIGN.md documents this gate.
const OFF_ENVELOPE_NS: f64 = 100.0;

fn metrics_smoke() -> ExitCode {
    let mut failed = false;

    // ---- 1. Small metered farm; validate the ledger end to end. -----
    let reg = MetricsRegistry::new();
    let farm = TaskFarm::<i64, i64>::start(
        "smoke",
        FarmConfig::bag(2).with_metrics(reg.clone()),
        |scope, _flag, n| {
            scope.result(&(n + 1));
            Ok(())
        },
    );
    for i in 0..64i64 {
        farm.send(0, &i);
    }
    for _ in 0..64 {
        farm.recv();
    }
    let report = farm.finish();
    if !report.leaked.is_empty() {
        eprintln!("metrics-smoke: farm leaked tuples: {:?}", report.leaked);
        failed = true;
    }
    let snap = reg.snapshot();

    // Golden schema: the committed fixture must decode, and the run's
    // export must carry the identical schema header and round-trip.
    let fixture_path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../tuplespace/tests/fixtures/metrics_snapshot.golden.json");
    match std::fs::read_to_string(&fixture_path) {
        Ok(fixture) => {
            if let Err(e) = MetricsSnapshot::from_json(&fixture) {
                eprintln!("metrics-smoke: golden fixture does not decode: {e}");
                failed = true;
            }
            let json = snap.to_json();
            if json.lines().nth(1) != fixture.lines().nth(1) {
                eprintln!("metrics-smoke: schema header differs from golden fixture");
                failed = true;
            }
            match MetricsSnapshot::from_json(&json) {
                Ok(back) if back == snap => {}
                Ok(_) => {
                    eprintln!("metrics-smoke: snapshot did not round-trip losslessly");
                    failed = true;
                }
                Err(e) => {
                    eprintln!("metrics-smoke: snapshot export does not decode: {e}");
                    failed = true;
                }
            }
        }
        Err(e) => {
            eprintln!(
                "metrics-smoke: cannot read golden fixture {}: {e}",
                fixture_path.display()
            );
            failed = true;
        }
    }

    for v in check_snapshot(&snap) {
        eprintln!("metrics-smoke: invariant violation: {v}");
        failed = true;
    }
    let tasks = snap.sum_counters(|k| k.contains(".worker.") && k.ends_with(".tasks"));
    if tasks != 64 {
        eprintln!("metrics-smoke: workers account for {tasks} tasks, expected 64");
        failed = true;
    }
    println!(
        "metrics-smoke: ledger ok — {} counters, {} gauges, {} histograms",
        snap.counters.len(),
        snap.gauges.len(),
        snap.histograms.len()
    );

    // ---- 2. Disabled-path overhead envelope. ------------------------
    // Best-of-5 over 50k out/inp cycles (2 space events per cycle),
    // comparing a space that had a registry installed then removed (the
    // gated path CI cares about) against one that never had one.
    const ITERS: u64 = 50_000;
    let pristine = TupleSpace::new();
    let gated = TupleSpace::new();
    gated.set_metrics(Some(MetricsRegistry::new()));
    gated.set_metrics(None);
    measure_cycle_ns(&pristine, ITERS); // warm both spaces up
    measure_cycle_ns(&gated, ITERS);
    let base = (0..5)
        .map(|_| measure_cycle_ns(&pristine, ITERS))
        .fold(f64::INFINITY, f64::min);
    let off = (0..5)
        .map(|_| measure_cycle_ns(&gated, ITERS))
        .fold(f64::INFINITY, f64::min);
    let per_event = (off - base) / 2.0;
    println!(
        "metrics-smoke: out/inp cycle {base:.1} ns pristine, {off:.1} ns metrics-off \
         ({per_event:+.1} ns/event, envelope {OFF_ENVELOPE_NS} ns)"
    );
    if per_event > OFF_ENVELOPE_NS {
        eprintln!(
            "metrics-smoke: metrics-off overhead {per_event:.1} ns/event exceeds the \
             {OFF_ENVELOPE_NS} ns envelope"
        );
        failed = true;
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Mean wall nanoseconds per out+inp cycle over `iters` cycles.
fn measure_cycle_ns(ts: &TupleSpace, iters: u64) -> f64 {
    let tmpl = Template::new(vec![field::val("t"), field::int()]);
    let start = Instant::now();
    for _ in 0..iters {
        ts.out(tup!["t", 1]);
        std::hint::black_box(ts.inp(&tmpl)).unwrap();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}
