//! Workspace task runner. Currently one task:
//!
//! ```text
//! cargo run -p xtask -- lint-templates [ROOT]
//! ```
//!
//! Exits non-zero if any tuple-space template in the tree is unmatchable
//! (see the crate docs for the analysis).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint-templates") => {
            let root = args
                .get(1)
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));
            match xtask::lint_dir(&root) {
                Ok(report) => {
                    print!("{}", report.render());
                    if report.is_clean() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("lint-templates: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint-templates [ROOT]");
            ExitCode::from(2)
        }
    }
}
