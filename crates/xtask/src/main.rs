//! Workspace task runner. Three tasks:
//!
//! ```text
//! cargo run -p xtask -- analyze [ROOT] [--json PATH]
//! cargo run --release -p xtask -- metrics-smoke
//! cargo run -p xtask -- changes-check [PATH]
//! ```
//!
//! `analyze` runs the whole-workspace static analysis (`fpdm-analyze`):
//! tuple-flow checks, transaction discipline, and protocol-duality
//! verification. It prints human diagnostics, optionally writes the
//! frozen `fpdm.lint.v1` JSON report (`--json PATH`, `-` for stdout),
//! and exits non-zero if any error-severity finding is not covered by
//! the root's `fpdm-analyze.allow` file. The old `lint-templates`
//! subcommand is kept as a deprecated alias for the analyzer's shape
//! pass.
//!
//! `metrics-smoke` is the CI observability gate: it runs a small metered
//! task farm twice — over the in-process backend and over an in-process
//! `fpdm-spaced`-style broker via the socket backend — validates both
//! resulting `MetricsSnapshot`s against the frozen golden schema (decode,
//! round-trip, cross-layer invariants), and measures that the
//! metrics-*off* tuple-space fast path costs no more than the documented
//! envelope (~100 ns/event) over a space that never had a registry
//! installed. Run it under `--release`; debug timings are dominated by
//! unoptimised match code.
//!
//! `changes-check` audits `CHANGES.md`: every entry must be a
//! `- PR <n>: ...` line and the PR numbers must be contiguous `1..=max`
//! with no duplicates, so a session that forgets (or double-writes) its
//! changelog line fails CI instead of leaving a silent gap.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use plinda::metrics::check_snapshot;
use plinda::{
    field, tup, Broker, BrokerConfig, FarmConfig, MetricsRegistry, MetricsSnapshot, TaskFarm,
    Template, TupleSpace,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => analyze(&args[1..], false),
        Some("lint-templates") => {
            eprintln!("lint-templates is deprecated; it now runs `analyze` shape pass only");
            analyze(&args[1..], true)
        }
        Some("metrics-smoke") => metrics_smoke(),
        Some("changes-check") => changes_check(args.get(1).map(String::as_str)),
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- analyze [ROOT] [--json PATH]\n       \
                 cargo run --release -p xtask -- metrics-smoke\n       \
                 cargo run -p xtask -- changes-check [PATH]"
            );
            ExitCode::from(2)
        }
    }
}

/// Run the static analyzer over ROOT (default: the workspace), print
/// diagnostics, optionally export the `fpdm.lint.v1` report, and map
/// unallowed error findings to a failing exit code. `shape_only`
/// restricts the verdict to the shape pass (the `lint-templates`
/// compatibility contract).
fn analyze(args: &[String], shape_only: bool) -> ExitCode {
    let mut root = None;
    let mut json_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--json" {
            match it.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("analyze: --json needs a path ('-' for stdout)");
                    return ExitCode::from(2);
                }
            }
        } else {
            root = Some(PathBuf::from(arg));
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));

    let report = match fpdm_analyze::analyze_dir(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("analyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    for f in &report.findings {
        println!("{}", f.render());
    }
    let s = &report.stats;
    println!(
        "analyze: {} files, {} templates ({} dynamic), {} productions, {} ops, \
         {} txn events; proto: {} configs, {} deliveries; {} finding(s)",
        s.files,
        s.templates,
        s.dynamic_templates,
        s.productions,
        s.ops,
        s.txn_events,
        s.proto_configs,
        s.proto_deliveries,
        report.findings.len()
    );
    if let Some(path) = json_path {
        let json = report.to_json();
        if path.as_os_str() == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(&path, json) {
            eprintln!("analyze: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    let failed = report.failures().any(|f| !shape_only || f.pass == "shape");
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Per-event cost envelope for the metrics-disabled fast path (one
/// relaxed atomic load), in nanoseconds. DESIGN.md documents this gate.
const OFF_ENVELOPE_NS: f64 = 100.0;

/// Run the 64-task smoke farm over `space` (`None` = in-process backend)
/// and return the resulting metered snapshot, or `None` on farm failure.
fn smoke_farm(label: &str, space: Option<Arc<TupleSpace>>) -> Option<MetricsSnapshot> {
    let reg = MetricsRegistry::new();
    let mut cfg = FarmConfig::bag(2).with_metrics(reg.clone());
    if let Some(s) = space {
        cfg = cfg.with_space(s);
    }
    let farm = TaskFarm::<i64, i64>::start("smoke", cfg, |scope, _flag, n| {
        scope.result(&(n + 1));
        Ok(())
    });
    for i in 0..64i64 {
        farm.send(0, &i);
    }
    for _ in 0..64 {
        farm.recv();
    }
    let report = farm.finish();
    if !report.leaked.is_empty() {
        eprintln!(
            "metrics-smoke: {label} farm leaked tuples: {:?}",
            report.leaked
        );
        return None;
    }
    Some(reg.snapshot())
}

/// Validate one run's snapshot against the frozen golden schema: the
/// fixture decodes, the export carries the identical schema header and
/// round-trips, the cross-layer invariants hold, and the worker cells
/// account for exactly the 64 dispatched tasks.
fn validate_snapshot(label: &str, snap: &MetricsSnapshot, fixture: Option<&str>) -> bool {
    let mut failed = false;
    if let Some(fixture) = fixture {
        let json = snap.to_json();
        if json.lines().nth(1) != fixture.lines().nth(1) {
            eprintln!("metrics-smoke: {label} schema header differs from golden fixture");
            failed = true;
        }
        match MetricsSnapshot::from_json(&json) {
            Ok(back) if back == *snap => {}
            Ok(_) => {
                eprintln!("metrics-smoke: {label} snapshot did not round-trip losslessly");
                failed = true;
            }
            Err(e) => {
                eprintln!("metrics-smoke: {label} snapshot export does not decode: {e}");
                failed = true;
            }
        }
    }
    for v in check_snapshot(snap) {
        eprintln!("metrics-smoke: {label} invariant violation: {v}");
        failed = true;
    }
    let tasks = snap.sum_counters(|k| k.contains(".worker.") && k.ends_with(".tasks"));
    if tasks != 64 {
        eprintln!("metrics-smoke: {label} workers account for {tasks} tasks, expected 64");
        failed = true;
    }
    if !failed {
        println!(
            "metrics-smoke: {label} ledger ok — {} counters, {} gauges, {} histograms",
            snap.counters.len(),
            snap.gauges.len(),
            snap.histograms.len()
        );
    }
    !failed
}

fn metrics_smoke() -> ExitCode {
    let mut failed = false;

    // Golden schema fixture, shared by both backend runs.
    let fixture_path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../tuplespace/tests/fixtures/metrics_snapshot.golden.json");
    let fixture = match std::fs::read_to_string(&fixture_path) {
        Ok(fixture) => {
            if let Err(e) = MetricsSnapshot::from_json(&fixture) {
                eprintln!("metrics-smoke: golden fixture does not decode: {e}");
                failed = true;
            }
            Some(fixture)
        }
        Err(e) => {
            eprintln!(
                "metrics-smoke: cannot read golden fixture {}: {e}",
                fixture_path.display()
            );
            failed = true;
            None
        }
    };

    // ---- 1. Metered farm over the in-process backend. ---------------
    match smoke_farm("local", None) {
        Some(snap) => failed |= !validate_snapshot("local", &snap, fixture.as_deref()),
        None => failed = true,
    }

    // ---- 1b. The identical farm over the socket backend: the frozen
    // `fpdm.metrics.v1` schema must hold for broker-backed runs too.
    let sock = std::env::temp_dir().join(format!("fpdm-metrics-smoke-{}.sock", std::process::id()));
    match Broker::start(BrokerConfig::new(&sock)) {
        Ok(broker) => match TupleSpace::connect_unix(broker.socket()) {
            Ok(space) => match smoke_farm("socket", Some(Arc::new(space))) {
                Some(snap) => failed |= !validate_snapshot("socket", &snap, fixture.as_deref()),
                None => failed = true,
            },
            Err(e) => {
                eprintln!("metrics-smoke: cannot connect to broker: {e}");
                failed = true;
            }
        },
        Err(e) => {
            eprintln!(
                "metrics-smoke: cannot start broker on {}: {e}",
                sock.display()
            );
            failed = true;
        }
    }

    // ---- 2. Disabled-path overhead envelope. ------------------------
    // Best-of-5 over 50k out/inp cycles (2 space events per cycle),
    // comparing a space that had a registry installed then removed (the
    // gated path CI cares about) against one that never had one.
    const ITERS: u64 = 50_000;
    let pristine = TupleSpace::new();
    let gated = TupleSpace::new();
    gated.set_metrics(Some(MetricsRegistry::new()));
    gated.set_metrics(None);
    measure_cycle_ns(&pristine, ITERS); // warm both spaces up
    measure_cycle_ns(&gated, ITERS);
    let base = (0..5)
        .map(|_| measure_cycle_ns(&pristine, ITERS))
        .fold(f64::INFINITY, f64::min);
    let off = (0..5)
        .map(|_| measure_cycle_ns(&gated, ITERS))
        .fold(f64::INFINITY, f64::min);
    let per_event = (off - base) / 2.0;
    println!(
        "metrics-smoke: out/inp cycle {base:.1} ns pristine, {off:.1} ns metrics-off \
         ({per_event:+.1} ns/event, envelope {OFF_ENVELOPE_NS} ns)"
    );
    if per_event > OFF_ENVELOPE_NS {
        eprintln!(
            "metrics-smoke: metrics-off overhead {per_event:.1} ns/event exceeds the \
             {OFF_ENVELOPE_NS} ns envelope"
        );
        failed = true;
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Audit CHANGES.md: every non-blank line is a `- PR <n>: ...` entry and
/// the numbers form a contiguous, duplicate-free `1..=max`. Catches the
/// failure mode this repo actually hit: a session whose changelog line
/// went missing, leaving a silent gap in the PR history.
fn changes_check(path: Option<&str>) -> ExitCode {
    let path = path
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../CHANGES.md"));
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("changes-check: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let mut numbers = Vec::new();
    let mut failed = false;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let entry = line
            .strip_prefix("- PR ")
            .and_then(|rest| rest.split_once(':'))
            .and_then(|(n, desc)| Some((n.trim().parse::<u64>().ok()?, desc)));
        match entry {
            Some((n, desc)) if !desc.trim().is_empty() => numbers.push((lineno + 1, n)),
            _ => {
                eprintln!(
                    "changes-check: line {} is not a '- PR <n>: <description>' entry",
                    lineno + 1
                );
                failed = true;
            }
        }
    }
    if numbers.is_empty() {
        eprintln!("changes-check: {} has no PR entries", path.display());
        return ExitCode::FAILURE;
    }
    let max = numbers.iter().map(|&(_, n)| n).max().unwrap();
    for want in 1..=max {
        match numbers.iter().filter(|&&(_, n)| n == want).count() {
            1 => {}
            0 => {
                eprintln!("changes-check: PR {want} is missing (entries reach PR {max})");
                failed = true;
            }
            k => {
                eprintln!("changes-check: PR {want} appears {k} times");
                failed = true;
            }
        }
    }
    for pair in numbers.windows(2) {
        if pair[1].1 <= pair[0].1 {
            eprintln!(
                "changes-check: line {}: PR {} listed after PR {} — entries must be in order",
                pair[1].0, pair[1].1, pair[0].1
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!(
            "changes-check: {} ok — PRs 1..={max} contiguous, in order",
            path.display()
        );
        ExitCode::SUCCESS
    }
}

/// Mean wall nanoseconds per out+inp cycle over `iters` cycles.
fn measure_cycle_ns(ts: &TupleSpace, iters: u64) -> f64 {
    let tmpl = Template::new(vec![field::val("t"), field::int()]);
    let start = Instant::now();
    for _ in 0..iters {
        ts.out(tup!["t", 1]);
        std::hint::black_box(ts.inp(&tmpl)).unwrap();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}
