//! End-to-end tests for `lint-templates`: the real workspace must pass,
//! and a deliberately unmatchable template must fail.

use std::fs;
use std::path::{Path, PathBuf};

use xtask::lint_dir;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn the_workspace_has_no_unmatchable_templates() {
    let report = lint_dir(&workspace_root()).unwrap();
    assert!(report.is_clean(), "{}", report.render());
    // Sanity: the scan actually saw the tree (templates in the tuplespace
    // crate, productions across the workspace).
    assert!(report.templates > 10, "{}", report.render());
    assert!(report.productions > 20, "{}", report.render());
}

#[test]
fn an_unmatchable_template_fails_the_lint() {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint_negative");
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    // The consumer waits on ("nine.lives", int, real) but the only
    // producer emits ("nine.lives", int) — wrong arity, never matchable.
    fs::write(
        dir.join("broken.rs"),
        r#"
        fn consumer(space: &TupleSpace) {
            let t = space.in_blocking(Template::new(vec![
                field::val("nine.lives"),
                field::int(),
                field::real(),
            ]));
        }
        fn producer(space: &TupleSpace) {
            space.out(tup!["nine.lives", 9]);
        }
        "#,
    )
    .unwrap();
    let report = lint_dir(&dir).unwrap();
    assert!(!report.is_clean());
    assert_eq!(report.unmatched.len(), 1);
    assert_eq!(report.unmatched[0].file, Path::new("broken.rs"));
    assert!(report.render().contains("nine.lives"));
}

#[test]
fn a_matching_producer_satisfies_the_lint() {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint_positive");
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    fs::write(
        dir.join("ok.rs"),
        r#"
        fn consumer(space: &TupleSpace) {
            let t = space.in_blocking(Template::new(vec![
                field::val("nine.lives"),
                field::int(),
            ]));
        }
        fn producer(space: &TupleSpace, n: i64) {
            space.out(tup!["nine.lives", n]);
        }
        "#,
    )
    .unwrap();
    let report = lint_dir(&dir).unwrap();
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.templates, 1);
}
