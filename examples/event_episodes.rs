//! Frequent episode discovery (§8.2's future-work application, built):
//! plant a serial episode in a noisy event stream and recover it with the
//! E-dag framework, sequentially and in parallel.
//!
//! ```text
//! cargo run --release -p fpdm --example event_episodes
//! ```

use fpdm::core::ParallelConfig;
use fpdm::datagen::event_stream;
use fpdm::episodes::{discover_episodes, discover_episodes_parallel, EpisodeParams, EventSequence};

fn main() {
    // 2000 ticks of background noise over types a-f, with "x then y then
    // z" recurring every ~12 ticks.
    let raw = event_stream(42, 2000, 6, 0.4, &[(b"xyz", 12)]);
    let events = EventSequence::new(raw);
    println!(
        "{} events over {:?}, alphabet {:?}",
        events.events().len(),
        events.span().unwrap(),
        events
            .alphabet()
            .iter()
            .map(|&e| e as char)
            .collect::<String>()
    );

    let windows = events.n_windows(8);
    let params = EpisodeParams {
        window: 8,
        min_windows: windows / 3,
        min_length: 2,
        max_length: 3,
    };
    let found = discover_episodes(&events, params.clone());
    println!("\nepisodes in >= 1/3 of the {windows} width-8 windows:");
    for f in &found {
        println!(
            "  {}  ({} windows, {:.0}%)",
            f.episode.iter().map(|&e| e as char).collect::<String>(),
            f.windows,
            f.windows as f64 / windows as f64 * 100.0
        );
    }
    assert!(
        found.iter().any(|f| f.episode == b"xyz".to_vec()),
        "the planted episode should surface"
    );

    let parallel = discover_episodes_parallel(
        &events,
        params,
        &ParallelConfig::load_balanced(4).adaptive(),
    );
    assert_eq!(found, parallel);
    println!(
        "\nparallel run on 4 PLinda workers agrees: {} episodes",
        parallel.len()
    );
}
