//! PLinda's fault-tolerance guarantee (§7.1) in action: run a parallel
//! mining job while killing workers mid-flight, and confirm the result is
//! identical to a failure-free run.
//!
//! ```text
//! cargo run -p fpdm --example fault_tolerance
//! ```

use fpdm::core::prelude::ToyItemsets;
use fpdm::core::sequential_ett;
use fpdm::core::MiningProblem;
use fpdm::plinda::{field, tup, FaultPlan, Runtime, Template};
use std::sync::Arc;
use std::time::Duration;

fn t_task() -> Template {
    Template::new(vec![field::val("task"), field::int(), field::bytes()])
}

fn t_done() -> Template {
    Template::new(vec![field::val("done"), field::bytes(), field::real()])
}

fn main() {
    // A small frequent-itemset problem.
    let problem = Arc::new(ToyItemsets::new(
        (0..24)
            .map(|i| vec![i % 5, (i + 1) % 5, (i * 3) % 7 + 5])
            .collect(),
        4,
    ));
    let reference = sequential_ett(&*problem);
    println!("failure-free reference: {} good itemsets", reference.len());

    // Hand-rolled master/worker with injected failures: workers evaluate
    // support for candidate itemsets; two of the three are killed early
    // and re-spawned by the runtime.
    let rt = Runtime::new();
    let space = rt.space();
    let mut pids = Vec::new();
    for _ in 0..3 {
        let problem = Arc::clone(&problem);
        pids.push(rt.spawn("miner", move |proc| loop {
            proc.xstart()?;
            let t = proc.in_(t_task())?;
            if t.int(1) == 1 {
                proc.xcommit(None)?;
                return Ok(());
            }
            let pattern: Vec<u32> = t
                .bytes(2)
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            let g = problem.goodness(&pattern);
            // Artificial work so the kills land mid-computation.
            std::thread::sleep(Duration::from_millis(2));
            proc.out(tup!["done", t.bytes(2).to_vec(), g]);
            proc.xcommit(None)?;
        }));
    }
    rt.inject(
        FaultPlan::new()
            .kill_after(Duration::from_millis(5), pids[0])
            .kill_after(Duration::from_millis(12), pids[1])
            .kill_after(Duration::from_millis(25), pids[0]),
    );
    // Checkpoint-protect the tuple space while the job runs (§2.4.6).
    let ckpt = std::env::temp_dir().join("fpdm-fault-tolerance.ckpt");
    rt.checkpoint_every(ckpt.clone(), Duration::from_millis(10));

    // Master: BFS over the itemset lattice, dispatching goodness tasks.
    let mut frontier = problem.children(&problem.root());
    let mut good = std::collections::BTreeMap::new();
    while !frontier.is_empty() {
        let mut dispatched = std::collections::HashMap::new();
        for p in frontier.drain(..) {
            let enc: Vec<u8> = p.iter().flat_map(|i| i.to_le_bytes()).collect();
            space.out(tup!["task", 0i64, enc.clone()]);
            dispatched.insert(enc, p);
        }
        let mut next = Vec::new();
        for _ in 0..dispatched.len() {
            let d = space.in_blocking(t_done());
            let p = dispatched[d.bytes(1)].clone();
            if problem.is_good(&p, d.real(2)) {
                next.extend(problem.children(&p));
                good.insert(p, d.real(2));
            }
        }
        frontier = next;
    }
    for _ in 0..3 {
        space.out(tup!["task", 1i64, Vec::<u8>::new()]);
    }
    // The Fig. 7.6 "Process Watch" view, as text.
    println!("\n{}", rt.monitor_text());
    rt.join();
    println!(
        "checkpoint on disk: {} bytes at {}",
        std::fs::metadata(&ckpt).map(|m| m.len()).unwrap_or(0),
        ckpt.display()
    );

    println!(
        "with {} injected kills and {} re-spawns: {} good itemsets",
        3,
        rt.respawns(),
        good.len()
    );
    assert_eq!(
        good, reference.good,
        "PLinda guarantee: same final state as a failure-free execution"
    );
    println!("results identical to the failure-free run ✓");
}
