//! Local vs socket backend cost, measured.
//!
//! ```text
//! cargo run --release --example backend_bench
//! ```
//!
//! Two measurements, each reported as the median of 5 runs:
//!
//! 1. `out_inp_cycle` — one `out` + one `inp` of a small tuple, the
//!    microbench EXPERIMENTS.md tracks for the in-process space, repeated
//!    over the socket backend (each op is one request/response round trip
//!    to an in-process broker).
//! 2. A small PLET-LB protein-motif discovery wall clock, identical
//!    program both ways (`with_space` is the only difference).

use fpdm::core::ParallelConfig;
use fpdm::datagen::{protein_family, PlantedMotif};
use fpdm::plinda::{field, tup, Broker, BrokerConfig, Template, TupleSpace};
use fpdm::seqmine::{discover_parallel, DiscoveryParams};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CYCLES: u64 = 20_000;
const RUNS: usize = 5;
const WORKERS: usize = 4;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Mean nanoseconds per out+inp cycle on `space`.
fn cycle_ns(space: &TupleSpace) -> f64 {
    let tmpl = Template::new(vec![field::val("b"), field::int()]);
    let start = Instant::now();
    for _ in 0..CYCLES {
        space.out(tup!["b", 1]);
        std::hint::black_box(space.inp(&tmpl)).unwrap();
    }
    start.elapsed().as_nanos() as f64 / CYCLES as f64
}

/// Wall time of one PLET-LB discovery run over `space`.
fn mining_wall(space: Option<Arc<TupleSpace>>) -> Duration {
    let family = protein_family(9, 20, 80, 10, &[PlantedMotif::exact("WWHHKK", 0.6)]);
    let params = DiscoveryParams::new(4, 8, 8, 1).with_sample_occurrence(2);
    let mut cfg = ParallelConfig::load_balanced(WORKERS);
    if let Some(s) = space {
        cfg = cfg.with_space(s);
    }
    let start = Instant::now();
    let found = discover_parallel(family, params, &cfg);
    let wall = start.elapsed();
    assert!(!found.is_empty(), "planted motif should be found");
    wall
}

fn main() {
    let sock = std::env::temp_dir().join(format!("fpdm-bench-{}.sock", std::process::id()));
    let broker = Broker::start(BrokerConfig::new(&sock)).expect("start broker");

    // --- out_inp_cycle ------------------------------------------------
    let local = TupleSpace::new();
    let socket = TupleSpace::connect_unix(broker.socket()).expect("connect");
    cycle_ns(&local); // warm-up
    cycle_ns(&socket);
    let local_ns = median((0..RUNS).map(|_| cycle_ns(&local)).collect());
    let socket_ns = median((0..RUNS).map(|_| cycle_ns(&socket)).collect());
    println!("out_inp_cycle ({CYCLES} cycles, median of {RUNS}):");
    println!("  local   {local_ns:8.0} ns/cycle");
    println!(
        "  socket  {socket_ns:8.0} ns/cycle  ({:.0}x, 2 round trips)",
        socket_ns / local_ns
    );

    // --- PLET-LB wall clock -------------------------------------------
    let local_wall = median(
        (0..RUNS)
            .map(|_| mining_wall(None).as_secs_f64() * 1e3)
            .collect(),
    );
    let socket_wall = median(
        (0..RUNS)
            .map(|_| {
                let space = TupleSpace::connect_unix(broker.socket()).expect("connect");
                mining_wall(Some(Arc::new(space))).as_secs_f64() * 1e3
            })
            .collect(),
    );
    println!("PLET-LB protein discovery, {WORKERS} workers (median of {RUNS}):");
    println!("  local   {local_wall:8.1} ms");
    println!(
        "  socket  {socket_wall:8.1} ms  ({:.1}x)",
        socket_wall / local_wall
    );
}
