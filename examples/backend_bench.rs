//! Local vs socket backend cost, measured, with a committed baseline.
//!
//! ```text
//! cargo run --release --example backend_bench                # measure, write BENCH_backend.json
//! cargo run --release --example backend_bench -- --check BENCH_backend.json
//! ```
//!
//! Three measurement groups, each the median of 5 runs:
//!
//! 1. `out_inp` — one `out` + one `inp` of a small tuple, the
//!    microbench EXPERIMENTS.md tracks for the in-process space, repeated
//!    over the socket backend (each op is one request/response round trip
//!    to an in-process broker).
//! 2. `bulk` — moving a block of tuples through the socket backend,
//!    unbatched (one `out` + one `inp` round trip per tuple) vs batched
//!    (`out_all_deferred` + `flush`, drained with `inp_batch`). The ratio
//!    is the headline win of the batched transport.
//! 3. `plet_lb` — a small PLET-LB protein-motif discovery wall clock,
//!    identical program both ways (`with_space` is the only difference);
//!    over the socket the farm's bulk-take prefetch kicks in.
//!
//! `--check` re-measures and compares the socket-path metrics against a
//! baseline file (the committed `BENCH_backend.json`), exiting 1 on any
//! regression over 25% beyond timer noise. The baseline is the same flat
//! `"key": number` JSON shape as `BENCH_classify.json`, parsed with a
//! line scanner instead of a JSON library.

use fpdm::core::ParallelConfig;
use fpdm::datagen::{protein_family, PlantedMotif};
use fpdm::plinda::{field, tup, Broker, BrokerConfig, Template, TupleSpace};
use fpdm::seqmine::{discover_parallel, DiscoveryParams};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

const CYCLES: u64 = 20_000;
/// Tuples moved per bulk run; `BULK_K` per bulk-take round trip.
const BULK_TUPLES: usize = 4_096;
const BULK_K: usize = 32;
const RUNS: usize = 5;
const WORKERS: usize = 4;
/// Default regression tolerance for `--check`, in percent.
const TOLERANCE_PCT: f64 = 25.0;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Mean nanoseconds per out+inp cycle on `space`.
fn cycle_ns(space: &TupleSpace) -> f64 {
    let tmpl = Template::new(vec![field::val("b"), field::int()]);
    let start = Instant::now();
    for _ in 0..CYCLES {
        space.out(tup!["b", 1]);
        std::hint::black_box(space.inp(&tmpl)).unwrap();
    }
    start.elapsed().as_nanos() as f64 / CYCLES as f64
}

/// Mean nanoseconds per tuple for moving `BULK_TUPLES` tuples through
/// `space` one round trip at a time (two per tuple: out, then inp).
fn bulk_unbatched_ns(space: &TupleSpace) -> f64 {
    let tmpl = Template::new(vec![field::val("blk"), field::int()]);
    let start = Instant::now();
    for i in 0..BULK_TUPLES {
        space.out(tup!["blk", i as i64]);
    }
    for _ in 0..BULK_TUPLES {
        std::hint::black_box(space.inp(&tmpl)).unwrap();
    }
    start.elapsed().as_nanos() as f64 / BULK_TUPLES as f64
}

/// Mean nanoseconds per tuple for the same block through the batched
/// paths: deferred outs coalesced behind one flush, drained `BULK_K`
/// tuples per `inp_batch` round trip.
fn bulk_batched_ns(space: &TupleSpace) -> f64 {
    let tmpl = Template::new(vec![field::val("blk"), field::int()]);
    let start = Instant::now();
    space.out_all_deferred((0..BULK_TUPLES).map(|i| tup!["blk", i as i64]).collect());
    space.flush();
    let mut got = 0;
    while got < BULK_TUPLES {
        let ts = space.inp_batch(&tmpl, BULK_K);
        assert!(!ts.is_empty(), "bulk drain starved at {got}/{BULK_TUPLES}");
        got += ts.len();
    }
    start.elapsed().as_nanos() as f64 / BULK_TUPLES as f64
}

/// Wall time of one PLET-LB discovery run over `space`.
fn mining_wall(space: Option<Arc<TupleSpace>>) -> Duration {
    let family = protein_family(9, 20, 80, 10, &[PlantedMotif::exact("WWHHKK", 0.6)]);
    let params = DiscoveryParams::new(4, 8, 8, 1).with_sample_occurrence(2);
    let mut cfg = ParallelConfig::load_balanced(WORKERS);
    if let Some(s) = space {
        cfg = cfg.with_space(s);
    }
    let start = Instant::now();
    let found = discover_parallel(family, params, &cfg);
    let wall = start.elapsed();
    assert!(!found.is_empty(), "planted motif should be found");
    wall
}

/// Run every measurement group, printing as it goes.
fn measure(broker: &Broker) -> BTreeMap<String, f64> {
    let mut m = BTreeMap::new();

    // --- out_inp_cycle ------------------------------------------------
    let local = TupleSpace::new();
    let socket = TupleSpace::connect_unix(broker.socket()).expect("connect");
    cycle_ns(&local); // warm-up
    cycle_ns(&socket);
    let local_ns = median((0..RUNS).map(|_| cycle_ns(&local)).collect());
    let socket_ns = median((0..RUNS).map(|_| cycle_ns(&socket)).collect());
    println!("out_inp_cycle ({CYCLES} cycles, median of {RUNS}):");
    println!("  local   {local_ns:8.0} ns/cycle");
    println!(
        "  socket  {socket_ns:8.0} ns/cycle  ({:.0}x, 2 round trips)",
        socket_ns / local_ns
    );
    m.insert("out_inp.local_ns".into(), local_ns);
    m.insert("out_inp.socket_ns".into(), socket_ns);

    // --- bulk throughput over the socket ------------------------------
    bulk_batched_ns(&socket); // warm-up
    let unbatched = median((0..RUNS).map(|_| bulk_unbatched_ns(&socket)).collect());
    let batched = median((0..RUNS).map(|_| bulk_batched_ns(&socket)).collect());
    println!("bulk transfer, socket ({BULK_TUPLES} tuples, median of {RUNS}):");
    println!("  unbatched {unbatched:8.0} ns/tuple  (2 round trips each)");
    println!(
        "  batched   {batched:8.0} ns/tuple  (deferred outs + inp_batch x{BULK_K}, {:.1}x faster)",
        unbatched / batched
    );
    m.insert("bulk.socket_unbatched_ns".into(), unbatched);
    m.insert("bulk.socket_batched_ns".into(), batched);

    // --- PLET-LB wall clock -------------------------------------------
    let local_wall = median(
        (0..RUNS)
            .map(|_| mining_wall(None).as_secs_f64() * 1e3)
            .collect(),
    );
    let socket_wall = median(
        (0..RUNS)
            .map(|_| {
                let space = TupleSpace::connect_unix(broker.socket()).expect("connect");
                mining_wall(Some(Arc::new(space))).as_secs_f64() * 1e3
            })
            .collect(),
    );
    println!("PLET-LB protein discovery, {WORKERS} workers (median of {RUNS}):");
    println!("  local   {local_wall:8.1} ms");
    println!(
        "  socket  {socket_wall:8.1} ms  ({:.1}x)",
        socket_wall / local_wall
    );
    m.insert("plet_lb.local_ms".into(), local_wall);
    m.insert("plet_lb.socket_ms".into(), socket_wall);
    m
}

fn write_json(path: &str, metrics: &BTreeMap<String, f64>) -> std::io::Result<()> {
    let mut body = String::from("{\n  \"schema\": 1,\n");
    for (i, (k, v)) in metrics.iter().enumerate() {
        let sep = if i + 1 == metrics.len() { "" } else { "," };
        body.push_str(&format!("  \"{k}\": {v:.3}{sep}\n"));
    }
    body.push_str("}\n");
    std::fs::write(path, body)
}

/// Parse the flat `"key": number` pairs back out of a baseline file.
fn read_json(path: &str) -> std::io::Result<BTreeMap<String, f64>> {
    let text = std::fs::read_to_string(path)?;
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if let Ok(v) = value.trim().parse::<f64>() {
            out.insert(key.to_string(), v);
        }
    }
    Ok(out)
}

/// Absolute slack below which a percentage delta is timer noise, per
/// metric unit (the ns metrics sit in the hundreds-of-ns range).
fn slack(key: &str) -> f64 {
    if key.ends_with("_ms") {
        2.0
    } else {
        500.0
    }
}

/// Compare the socket-path metrics of a fresh run against the committed
/// baseline; returns the metrics that regressed beyond `tol_pct`.
fn check(
    baseline: &BTreeMap<String, f64>,
    fresh: &BTreeMap<String, f64>,
    tol_pct: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for (key, &new) in fresh {
        if !key.contains("socket") {
            continue; // local-path numbers are context, not a gate
        }
        let Some(&old) = baseline.get(key) else {
            eprintln!("  [new metric {key}: {new:.1}, no baseline — skipped]");
            continue;
        };
        let delta_pct = (new - old) / old * 100.0;
        let regressed = delta_pct > tol_pct && new - old > slack(key);
        let verdict = if regressed { "REGRESSED" } else { "ok" };
        eprintln!("  {key:<28} {old:10.1} -> {new:10.1}  {delta_pct:+6.1}%  {verdict}");
        if regressed {
            failures.push(format!("{key}: {old:.1} -> {new:.1} ({delta_pct:+.1}%)"));
        }
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path: Option<String> = None;
    let mut out_path = "BENCH_backend.json".to_string();
    let mut tolerance = TOLERANCE_PCT;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => baseline_path = it.next().cloned(),
            "--out" => out_path = it.next().cloned().unwrap_or(out_path),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(TOLERANCE_PCT)
            }
            other => {
                eprintln!("usage: backend_bench [--check BASELINE] [--out PATH] [--tolerance PCT]");
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let sock = std::env::temp_dir().join(format!("fpdm-bench-{}.sock", std::process::id()));
    let broker = Broker::start(BrokerConfig::new(&sock)).expect("start broker");
    let metrics = measure(&broker);

    if let Some(path) = baseline_path {
        let baseline = match read_json(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        eprintln!("perf smoke: socket-path metrics vs {path} (tolerance {tolerance}%)");
        let failures = check(&baseline, &metrics, tolerance);
        if failures.is_empty() {
            eprintln!("perf smoke: ok");
        } else {
            eprintln!("perf smoke: {} regression(s):", failures.len());
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    } else if let Err(e) = write_json(&out_path, &metrics) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(2);
    } else {
        println!("wrote {out_path}");
    }
}
