//! Discovery of motifs in RNA secondary structures (§4.1.2): plant a
//! structural motif in a set of synthetic RNA trees and recover it with
//! the tree-mining E-dag problem, exactly and within edit distance 1.
//!
//! ```text
//! cargo run --release -p fpdm --example rna_motifs
//! ```

use fpdm::datagen::rna_structures;
use fpdm::treemine::{
    discover_tree_motifs, parse_dot_bracket, tree_edit_distance, OrderedTree, TreeDiscoveryParams,
};

fn main() {
    // Real structures arrive in Vienna dot-bracket notation; Fig. 4.2's
    // conversion to the Shapiro tree is built in.
    let db = "((..((...))..((...))))";
    println!("{db}  ->  {}", parse_dot_bracket(db).unwrap());

    let planted = OrderedTree::parse("M(R(H),R(H))");
    let trees = rna_structures(3, 14, 16, &[(planted.clone(), 0.8)]);
    println!("{} synthetic RNA structures, e.g.:", trees.len());
    for t in trees.iter().take(3) {
        println!("  {t}");
    }

    let params = TreeDiscoveryParams {
        min_size: 4,
        max_size: 5,
        min_occurrence: 10,
        max_distance: 0,
    };
    let exact = discover_tree_motifs(trees.clone(), params.clone());
    println!("\nexact motifs (size>=4, occur>=10):");
    for m in &exact {
        println!("  {}  occurs in {}", m.motif, m.occurrence);
    }
    assert!(
        exact
            .iter()
            .any(|m| tree_edit_distance(&m.motif, &planted) <= 1),
        "a motif close to the planted one should surface"
    );

    let approx = discover_tree_motifs(
        trees,
        TreeDiscoveryParams {
            max_distance: 1,
            min_occurrence: 12,
            ..params
        },
    );
    println!(
        "\nwithin edit distance 1 (occur>=12): {} motifs",
        approx.len()
    );
    for m in approx.iter().take(5) {
        println!("  {}  occurs in {}", m.motif, m.occurrence);
    }
}
