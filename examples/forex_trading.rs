//! Making money in foreign exchange (§5.6): NyuMiner-RS rule selection
//! on a synthetic rate series — the Fig. 5.6 / Table 5.6 pipeline.
//!
//! ```text
//! cargo run --release -p fpdm --example forex_trading
//! ```

use fpdm::classify::forex::{build_features, run_forex, FEATURE_NAMES};
use fpdm::classify::nyuminer::NyuConfig;
use fpdm::datagen::{fx_series, FxSpec};

fn main() {
    let rates = fx_series(
        &FxSpec {
            days: 3000,
            ..FxSpec::default()
        },
        11,
    );
    let fx = build_features(&rates);
    println!(
        "built {} daily feature rows over {:?}...",
        fx.data.len(),
        &FEATURE_NAMES[..5]
    );

    let run = run_forex(&rates, &NyuConfig::default(), 3, 0.80, 0.01, 5);
    println!(
        "plain out-of-sample accuracy (trade every day): {:.1}%  <- the \"poor job\" of §5.6.2",
        run.plain_accuracy * 100.0
    );
    println!(
        "rule selection kept {} rules with confidence >= 80%, support >= 1%",
        run.rules_selected
    );
    let o = &run.outcome;
    println!(
        "covered {} of the test days; accuracy on covered days {:.1}%",
        o.days_covered,
        o.accuracy * 100.0
    );
    println!(
        "trading 1000 units: first currency -> {:.0} ({:+.1}%), second -> {:.0} ({:+.1}%), avg {:+.1}%",
        o.first_currency,
        o.gain_first,
        o.second_currency,
        o.gain_second,
        o.average_gain()
    );
}
