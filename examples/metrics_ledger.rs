//! Run one metered PLET-LB mining job and read its ledger.
//!
//! ```text
//! cargo run --release --example metrics_ledger
//! ```
//!
//! Installs a [`plinda::MetricsRegistry`] on the protein-motif discovery
//! farm, then distils the snapshot into the table EXPERIMENTS.md quotes:
//! where each worker's wall time went (busy / blocked / idle) and how
//! much master contention the run suffered (block counts and durations
//! on the shared bag). Pass `--json` to dump the raw snapshot in the
//! frozen schema instead of text.

use fpdm::core::ParallelConfig;
use fpdm::datagen::{protein_family, PlantedMotif};
use fpdm::plinda::MetricsRegistry;
use fpdm::seqmine::{discover_parallel, DiscoveryParams};

const WORKERS: usize = 4;

fn main() {
    let family = protein_family(9, 40, 120, 10, &[PlantedMotif::exact("WWHHKK", 0.6)]);
    let params = DiscoveryParams::new(4, 8, 8, 1).with_sample_occurrence(2);

    let reg = MetricsRegistry::new();
    let cfg = ParallelConfig::load_balanced(WORKERS).with_metrics(reg.clone());
    let found = discover_parallel(family, params, &cfg);
    let snap = reg.snapshot();

    if std::env::args().any(|a| a == "--json") {
        println!("{}", snap.to_json());
        return;
    }

    println!(
        "PLET-LB protein discovery, {WORKERS} workers: {} motifs found\n",
        found.len()
    );

    // Where each worker's wall-clock went. `blocked` is time parked in
    // `in` on the shared task bag — the master-contention signal the
    // adaptive master of §4.4 reacts to.
    println!("worker   tasks   busy ms   blocked ms   idle ms   blocked");
    let mut tot = [0u64; 3];
    for w in 0..WORKERS {
        let p = format!("farm.plet-lb.worker.{w}");
        let tasks = snap.counter(&format!("{p}.tasks"));
        let busy = snap.counter(&format!("{p}.busy_ns"));
        let blocked = snap.counter(&format!("{p}.blocked_ns"));
        let wall = snap.counter(&format!("{p}.wall_ns"));
        let idle = wall.saturating_sub(busy + blocked);
        tot[0] += busy;
        tot[1] += blocked;
        tot[2] += wall;
        println!(
            "{w:>6}   {tasks:>5}   {:>7.2}   {:>10.2}   {:>7.2}   {:>6.1}%",
            busy as f64 / 1e6,
            blocked as f64 / 1e6,
            idle as f64 / 1e6,
            100.0 * blocked as f64 / wall.max(1) as f64,
        );
    }
    println!(
        " total           {:>7.2}   {:>10.2}             {:>6.1}%\n",
        tot[0] as f64 / 1e6,
        tot[1] as f64 / 1e6,
        100.0 * tot[1] as f64 / tot[2].max(1) as f64,
    );

    // Contention on the shared space: how often anyone parked, and for
    // how long per wake. The master's own `recv` waits dominate the
    // histogram — long parks here mean the master is starved for
    // results, short frequent parks mean workers are starved for tasks.
    let blocks = snap.counter("space.ops.block");
    let wakes = snap.counter("space.ops.wake");
    if let Some(h) = snap.histogram("space.block_ns") {
        println!(
            "space: {} ops out, {} taken; {blocks} parks, {wakes} wakes \
             (incl. master recv), mean block {:.1} ms",
            snap.counter("space.ops.out"),
            snap.counter("space.ops.take"),
            h.mean() as f64 / 1e6,
        );
    }
    println!(
        "txns:  {} committed, {} aborted, {} continuations",
        snap.counter("txn.commit"),
        snap.counter("txn.abort"),
        snap.counter("txn.continuations"),
    );
}
