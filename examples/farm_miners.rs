//! The farmed lattice miners — seqmine (GST motif discovery), treemine
//! (tree-distance motifs), and episodes (frequent episodes) — run as
//! candidate-partitioned wave farms (`fpdm_core::parallel_wave`) against
//! their sequential counterparts.
//!
//! Two measurements per miner, following the Chapter 4 methodology:
//!
//! 1. **Real runs**: the farm executes on this host at several worker
//!    counts and the output is asserted bit-identical to the sequential
//!    miner before any time is printed.
//! 2. **Cost replay**: the sequential traversal is recorded as a
//!    [`CostTree`] (every tested candidate with its measured goodness
//!    cost) and re-scheduled through the NOW simulator under the wave
//!    farm's level-synchronous discipline at machine counts the host
//!    does not have. The schedule is simulated; the work content is
//!    real. Numbers land in EXPERIMENTS.md ("the farmed miners").

use fpdm::core::strategy::CostTree;
use fpdm::core::{MiningProblem, ParallelConfig};
use fpdm::datagen::{event_stream, protein_family, rna_structures, PlantedMotif};
use fpdm::episodes::{
    discover_episodes, discover_episodes_farm, EpisodeMiningProblem, EpisodeParams, EventSequence,
};
use fpdm::nowsim::{MachineSpec, SimConfig, SimProgram, SimTask, Simulator};
use fpdm::seqmine::{discover, discover_farm, DiscoveryParams, SeqMiningProblem, Sequence};
use fpdm::treemine::{
    discover_tree_motifs, discover_tree_motifs_farm, OrderedTree, TreeDiscoveryParams,
    TreeMiningProblem,
};
use std::time::Instant;

const REAL_WORKERS: &[usize] = &[1, 4];
const SIM_MACHINES: &[usize] = &[1, 2, 4, 8];

/// The wave farm's schedule: the whole frontier level is dispatched at
/// once, the next level only after the last task of the current one
/// completes (the master's collection barrier in `parallel_wave`).
struct WaveReplay<'a> {
    tree: &'a CostTree,
    depth: usize,
    remaining: usize,
}

impl<'a> WaveReplay<'a> {
    fn wave(&mut self, depth: usize) -> Vec<SimTask> {
        let ids = self.tree.at_depth(depth);
        self.depth = depth;
        self.remaining = ids.len();
        ids.into_iter()
            .map(|id| SimTask::new(id as u64, self.tree.nodes()[id].cost))
            .collect()
    }
}

impl SimProgram for WaveReplay<'_> {
    fn initial_tasks(&mut self) -> Vec<SimTask> {
        self.wave(1)
    }

    fn on_complete(&mut self, _task: &SimTask) -> Vec<SimTask> {
        self.remaining -= 1;
        if self.remaining > 0 {
            return Vec::new();
        }
        self.wave(self.depth + 1)
    }
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Sequential magnitude the recorded tree is scaled to before replay,
/// following the harness's presentation convention: measured costs are
/// converted to the paper's SPARC-era scale (Table 4.2 runs take
/// minutes to hours), so the LAN overheads of `SimConfig::lan_default`
/// stand in the same proportion to task grain as in the dissertation.
const PAPER_SEQ: f64 = 600.0;

fn replay<P: MiningProblem>(name: &str, problem: &P) {
    let tree = CostTree::record_timed(problem);
    let tree = tree.scaled(PAPER_SEQ / tree.sequential_time().max(1e-9));
    let seq = tree.sequential_time();
    println!(
        "  cost replay ({} candidates, scaled to {:.0}s sequential work):",
        tree.len(),
        seq
    );
    println!("  Machines  Time(s)  Speedup");
    for &m in SIM_MACHINES {
        let mut prog = WaveReplay {
            tree: &tree,
            depth: 0,
            remaining: 0,
        };
        let machines: Vec<MachineSpec> = (0..m).map(|_| MachineSpec::ideal()).collect();
        let report = Simulator::run(&mut prog, &machines, &SimConfig::lan_default());
        println!(
            "  {m:>8}  {:>7.2}  {:>7.2}",
            report.makespan,
            report.speedup(seq)
        );
    }
    println!();
    let _ = name;
}

fn bench_seqmine() {
    let db: Vec<Sequence> = protein_family(
        7,
        40,
        120,
        20,
        &[
            PlantedMotif::exact("HLRRKW", 0.5),
            PlantedMotif::exact("GAVLDY", 0.4),
        ],
    );
    let params = DiscoveryParams::new(4, 7, 8, 1);
    let (reference, seq_s) = timed(|| discover(db.clone(), params.clone()));
    println!(
        "seqmine: sequential {:.2}s, {} motifs",
        seq_s,
        reference.len()
    );
    for &w in REAL_WORKERS {
        let cfg = ParallelConfig::load_balanced(w);
        let (got, t) = timed(|| discover_farm(db.clone(), params.clone(), &cfg));
        assert_eq!(reference, got, "farm output drifted from sequential");
        println!("  real farm, {w} workers: {t:.2}s (output bit-identical)");
    }
    replay("seqmine", &SeqMiningProblem::new(db, params));
}

fn bench_treemine() {
    let trees: Vec<OrderedTree> = rna_structures(
        11,
        40,
        30,
        &[
            (OrderedTree::parse("M(R,H)"), 0.6),
            (OrderedTree::parse("I(B,B)"), 0.5),
        ],
    );
    let params = TreeDiscoveryParams {
        min_size: 2,
        max_size: 5,
        min_occurrence: 10,
        max_distance: 1,
    };
    let (reference, seq_s) = timed(|| discover_tree_motifs(trees.clone(), params.clone()));
    println!(
        "treemine: sequential {:.2}s, {} motifs",
        seq_s,
        reference.len()
    );
    for &w in REAL_WORKERS {
        let cfg = ParallelConfig::load_balanced(w);
        let (got, t) = timed(|| discover_tree_motifs_farm(trees.clone(), params.clone(), &cfg));
        assert_eq!(reference, got, "farm output drifted from sequential");
        println!("  real farm, {w} workers: {t:.2}s (output bit-identical)");
    }
    replay("treemine", &TreeMiningProblem::new(trees, params));
}

fn bench_episodes() {
    let events = EventSequence::new(event_stream(
        13,
        20_000,
        6,
        0.8,
        &[(b"abc", 25), (b"fed", 40)],
    ));
    let params = EpisodeParams {
        window: 12,
        min_windows: 200,
        min_length: 1,
        max_length: 4,
    };
    let (reference, seq_s) = timed(|| discover_episodes(&events, params.clone()));
    println!(
        "episodes: sequential {:.2}s, {} episodes",
        seq_s,
        reference.len()
    );
    for &w in REAL_WORKERS {
        let cfg = ParallelConfig::load_balanced(w);
        let (got, t) = timed(|| discover_episodes_farm(&events, params.clone(), &cfg));
        assert_eq!(reference, got, "farm output drifted from sequential");
        println!("  real farm, {w} workers: {t:.2}s (output bit-identical)");
    }
    replay("episodes", &EpisodeMiningProblem::new(events, params));
}

fn main() {
    println!("Farmed lattice miners: sequential vs parallel_wave\n");
    bench_seqmine();
    bench_treemine();
    bench_episodes();
}
