//! Biological pattern discovery (Chapter 4): find active motifs in a
//! synthetic protein family, sequentially and on the parallel PLinda
//! runtime, and show the two-segment `*X1*X2*` form.
//!
//! ```text
//! cargo run --release -p fpdm --example protein_motifs
//! ```

use fpdm::core::ParallelConfig;
use fpdm::datagen::{protein_family, PlantedMotif};
use fpdm::seqmine::{discover, discover_parallel, discover_two_segment, DiscoveryParams};

fn main() {
    // 30 sequences of ~length 120 with two planted motif families.
    let family = protein_family(
        42,
        30,
        120,
        20,
        &[
            PlantedMotif::exact("WHKDELRNW", 0.5),
            PlantedMotif::mutated("CCAYYLMMPPA", 0.6, 1),
        ],
    );
    let params = DiscoveryParams::new(6, 12, 10, 1).with_sample_occurrence(3);

    println!("Discovering motifs (Length>=6, Occur>=10, Mut<=1)...");
    let motifs = discover(family.clone(), params.clone());
    for m in &motifs {
        println!("  {}  occurs in {} sequences", m.motif, m.occurrence);
    }

    // The same run on 4 PLinda workers with the adaptive master.
    let parallel = discover_parallel(
        family.clone(),
        params.clone(),
        &ParallelConfig::load_balanced(4).adaptive(),
    );
    assert_eq!(motifs, parallel, "parallel discovery must agree");
    println!(
        "parallel run on 4 workers agrees: {} motifs",
        parallel.len()
    );

    // Combine active segments into two-segment motifs.
    let singles = discover(
        family.clone(),
        DiscoveryParams::new(3, 6, 10, 0).with_sample_occurrence(3),
    );
    let twos = discover_two_segment(&family, &singles, &DiscoveryParams::new(7, 12, 10, 0));
    println!("\ntwo-segment motifs (|P|>=7, Occur>=10): {}", twos.len());
    for m in twos.iter().take(5) {
        println!("  {}  occurs in {}", m.motif, m.occurrence);
    }
}
