//! Association rule mining (§2.2): the K-mart example plus a synthetic
//! Quest-style database, mined by Apriori, Partition, the E-dag
//! framework, and the PEAR-style parallel miner — all agreeing.
//!
//! ```text
//! cargo run --release -p fpdm --example market_baskets
//! ```

use fpdm::assoc::{
    apriori, generate_rules, parallel_apriori, partition_mine, ItemsetMiningProblem, TransactionDb,
};
use fpdm::core::sequential_edt;
use fpdm::datagen::{basket_db, BasketSpec};
use std::sync::Arc;

fn main() {
    // Table 2.2's imaginary K-mart database:
    // pamper=1 soap=2 lipstick=3 soda=4 candy=5 beer=6.
    let items = ["", "pamper", "soap", "lipstick", "soda", "candy", "beer"];
    let kmart = TransactionDb::new(vec![
        vec![1, 2, 3],
        vec![4, 1, 3, 5],
        vec![6, 4],
        vec![6, 5, 1],
    ]);
    let frequent = apriori(&kmart, 2);
    println!("K-mart frequent itemsets (support >= 2):");
    for (set, supp) in &frequent {
        let names: Vec<&str> = set.iter().map(|&i| items[i as usize]).collect();
        println!("  {{{}}}: {supp}", names.join(", "));
    }
    println!("\nrules with confidence >= 60%:");
    for r in generate_rules(&frequent, 0.6) {
        let a: Vec<&str> = r.antecedent.iter().map(|&i| items[i as usize]).collect();
        let c: Vec<&str> = r.consequent.iter().map(|&i| items[i as usize]).collect();
        println!(
            "  ({}) -> ({})  supp {}  conf {:.0}%",
            a.join(","),
            c.join(","),
            r.support,
            r.confidence * 100.0
        );
    }

    // A larger synthetic store: four phase-I algorithms, one answer.
    let db = basket_db(
        &BasketSpec {
            transactions: 2000,
            items: 120,
            ..BasketSpec::default()
        },
        7,
    );
    let min_support = db.len() / 50;
    let a = apriori(&db, min_support);
    let p = partition_mine(&db, min_support, 4);
    let problem = ItemsetMiningProblem::new(db.clone(), min_support);
    let e = problem.report(&sequential_edt(&problem));
    let par = parallel_apriori(Arc::new(db), min_support, 4);
    assert_eq!(a, p, "Partition == Apriori");
    assert_eq!(a, e, "E-dag == Apriori");
    assert_eq!(a, par, "parallel count-distribution == Apriori");
    println!(
        "\nsynthetic store: {} frequent itemsets at support >= {min_support} \
         (Apriori == Partition == E-dag == parallel)",
        a.len()
    );
    let largest = a.keys().map(Vec::len).max().unwrap_or(0);
    println!("largest frequent itemset size: {largest}");
}
