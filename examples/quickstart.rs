//! Quickstart: define a pattern-lattice mining problem, solve it
//! sequentially and in parallel, and confirm the framework's equivalence
//! theorems on the spot.
//!
//! ```text
//! cargo run -p fpdm --example quickstart
//! ```

use fpdm::core::prelude::*;
use std::sync::Arc;

fn main() {
    // The toy protein database of §2.3.1 of the dissertation: find all
    // substrings occurring in at least two of the sequences.
    let problem = ToySeq::new(vec!["FFRR", "MRRM", "MTRM", "DPKY", "AVLG"], 2, usize::MAX);

    // Sequential E-dag traversal (maximal pruning)...
    let (edt, trace) = sequential_edt_traced(&problem);
    println!(
        "E-dag traversal: {} good patterns, {} goodness evaluations",
        edt.len(),
        edt.tested
    );

    // ...sequential E-tree traversal (parent-only pruning)...
    let ett = sequential_ett(&problem);
    println!(
        "E-tree traversal: {} good patterns, {} goodness evaluations",
        ett.len(),
        ett.tested
    );

    // ...and the parallel traversals on the PLinda runtime.
    let arc = Arc::new(problem);
    let pled = parallel_edt(Arc::clone(&arc), 3);
    let plet = parallel_ett(
        Arc::clone(&arc),
        &ParallelConfig::load_balanced(3).adaptive(),
    );

    // Theorems 1-3: every traversal finds the same good patterns.
    assert_eq!(edt.good, ett.good);
    assert_eq!(edt.good, pled.good);
    assert_eq!(edt.good, plet.good);
    // The E-dag's extra pruning shows in the evaluation counts.
    assert!(edt.tested <= ett.tested);
    println!(
        "skipped by E-dag subpattern pruning: {} candidates",
        trace.skipped.len()
    );

    println!("\nGood patterns (pattern: occurrence):");
    for (pattern, occurrence) in &edt.good {
        println!("  *{pattern}*: {occurrence}");
    }
}
