//! Classification trees (Chapters 2 and 5): the heart-disease table of
//! Table 2.1 — does Karp have heart disease? — learned by NyuMiner, CART,
//! and C4.5.
//!
//! ```text
//! cargo run -p fpdm --example classify_heart
//! ```

use fpdm::classify::c45::{C45Config, C45};
use fpdm::classify::nyuminer::{NyuConfig, NyuMinerCV};
use fpdm::classify::rulemine::mine_classification_rules;
use fpdm::classify::{
    AttrValue, Attribute, Classifier, Dataset, DecisionTree, GrowConfig, GrowRule,
};

fn schema() -> Vec<Attribute> {
    vec![
        Attribute::Numeric {
            name: "weight".into(),
        },
        Attribute::Numeric { name: "age".into() },
        Attribute::Categorical {
            name: "bp".into(),
            values: vec!["low".into(), "med".into(), "high".into()],
        },
    ]
}

fn main() {
    // Table 2.1 without Karp: (weight, age, bp, heart disease?).
    let rows: [(f64, f64, u16, u16); 6] = [
        (180.0, 27.0, 0, 1), // Jihai
        (140.0, 20.0, 0, 0), // Tom
        (150.0, 30.0, 1, 0), // Hansoo
        (150.0, 31.0, 0, 0), // Peter
        (150.0, 35.0, 2, 1), // Bin
        (150.0, 62.0, 0, 1), // Dennis
    ];
    let data = Dataset::new(
        schema(),
        vec![
            rows.iter().map(|r| AttrValue::Num(r.0)).collect(),
            rows.iter().map(|r| AttrValue::Num(r.1)).collect(),
            rows.iter().map(|r| AttrValue::Cat(r.2)).collect(),
        ],
        rows.iter().map(|r| r.3).collect(),
        vec!["no".into(), "yes".into()],
    );

    let nyu = NyuMinerCV::fit(&data, &data.all_rows(), &NyuConfig::default(), 0, 1);
    let cart = DecisionTree::grow(
        &data,
        &data.all_rows(),
        &GrowRule::Cart,
        &GrowConfig::default(),
    );
    let c45 = C45::fit(&data, &data.all_rows(), &C45Config::default());

    println!(
        "NyuMiner tree on the PLinda group's records:\n{}",
        nyu.tree.render(&data)
    );

    // Karp: 140 lb, 32 years, low blood pressure.
    let karp = Dataset::new(
        schema(),
        vec![
            vec![AttrValue::Num(140.0)],
            vec![AttrValue::Num(32.0)],
            vec![AttrValue::Cat(0)],
        ],
        vec![0],
        vec!["no".into(), "yes".into()],
    );
    for (name, prediction) in [
        ("NyuMiner", nyu.predict(&karp, 0)),
        ("CART", cart.predict(&karp, 0)),
        ("C4.5", c45.predict(&karp, 0)),
    ] {
        println!(
            "{name}: Karp {} heart disease",
            if prediction == 1 {
                "has"
            } else {
                "does not have"
            }
        );
    }
    println!("(but he should go see a doctor anyway)");

    // Rules induced from the table, like §2.1.1's
    // "(Age > 60) -> Yes" and "(Age < 30 & Wt >= 160) -> No":
    // classification rule mining over the same data (Fig. 3.3 for real).
    let (mined, problem) = mine_classification_rules(data.clone(), data.all_rows(), 3, 1, 0.99);
    println!("\npure classification rules (cover >= 1):");
    for rule in mined.iter().take(6) {
        let conds: Vec<String> = rule
            .conditions
            .iter()
            .map(|&c| problem.describe_condition(c))
            .collect();
        println!(
            "  {} -> {} (cover {})",
            conds.join(" & "),
            data.class_names()[rule.class as usize],
            rule.cover
        );
    }
}
