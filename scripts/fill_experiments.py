#!/usr/bin/env python3
"""Splice the experiment harness output into EXPERIMENTS.md.

Usage: python3 scripts/fill_experiments.py [experiments_output.txt]

Replaces each `<!-- ID -->` marker (e.g. `<!-- T4.2 -->`, `<!-- F6.3 -->`)
with the corresponding harness section, fenced as a code block. Idempotent:
re-running replaces previously spliced blocks.
"""

import re
import sys

OUT = sys.argv[1] if len(sys.argv) > 1 else "experiments_output.txt"

# Map marker id -> section header prefix in the harness output.
HEADERS = {
    "T4.2": "== Table 4.2",
    "F4.8": "== Figure 4.8",
    "F4.9": "== Figure 4.9",
    "F4.10": "== Figure 4.10",
    "F4.11": "== Figure 4.11",
    "F4.12": "== Figure 4.12",
    "F4.13": "== Figure 4.13",
    "F4.14": "== Figure 4.14",
    "T5.1": "== Table 5.1",
    "T5.2": "== Table 5.2",
    "T5.3": "== Table 5.3",
    "T5.4": "== Table 5.4",
    "T5.5": "== Table 5.5",
    "T5.6": "== Table 5.6",
    "T6.1": "== Table 6.1",
    "F6.3": "== Figure 6.3",
    "F6.4": "== Figure 6.4",
    "T6.2": "== Table 6.2",
    "F6.5": "== Figure 6.5",
    "F6.6": "== Figure 6.6",
    "T6.3": "== Table 6.3",
    "F6.7": "== Figure 6.7",
    "F6.8": "== Figure 6.8",
}


def sections(text):
    """Split harness output into {header_line: body} chunks."""
    out = {}
    current = None
    body = []
    for line in text.splitlines():
        if line.startswith("== "):
            if current:
                out[current] = "\n".join(body).strip()
            current = line
            body = []
        elif current is not None:
            body.append(line)
    if current:
        out[current] = "\n".join(body).strip()
    return out


def main():
    harness = open(OUT).read()
    secs = sections(harness)
    md = open("EXPERIMENTS.md").read()

    for marker, prefix in HEADERS.items():
        match = next((k for k in secs if k.startswith(prefix)), None)
        if match is None:
            print(f"warning: no harness section for {marker}", file=sys.stderr)
            continue
        block = f"<!-- {marker} -->\n```text\n{secs[match]}\n```"
        # Replace the bare marker, or a previously spliced marker+block.
        pattern = re.compile(
            rf"<!-- {re.escape(marker)} -->(\n```text\n.*?\n```)?",
            re.DOTALL,
        )
        md, n = pattern.subn(block, md, count=1)
        if n == 0:
            print(f"warning: marker {marker} not found in EXPERIMENTS.md", file=sys.stderr)

    open("EXPERIMENTS.md", "w").write(md)
    print("EXPERIMENTS.md updated")


if __name__ == "__main__":
    main()
