//! Offline stand-in for the `rand` crate.
//!
//! The workspace only needs *seeded, deterministic, statistically decent*
//! generation — every consumer seeds an [`rngs::StdRng`] explicitly via
//! [`SeedableRng::seed_from_u64`] and compares sequential against parallel
//! runs of the same seed, so stream-compatibility with upstream `rand` is
//! irrelevant. The generator is xoshiro256++ seeded through SplitMix64
//! (Blackman & Vigna), the same family upstream `StdRng` has used.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draw one value from the standard distribution of `Self`.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Per-type uniform sampling between two bounds. A single generic
/// `SampleRange` impl is layered over this so that integer literals in
/// ranges unify with the surrounding expression type, as upstream's
/// `SampleUniform` design does.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` when `inclusive` is false, `[lo, hi]`
    /// when true.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "empty random_range");
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self {
        if inclusive {
            assert!(lo <= hi, "empty random_range");
        } else {
            assert!(lo < hi, "empty random_range");
        }
        lo + f64::standard(rng) * (hi - lo)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

/// The convenience methods of `rand`'s `Rng`/`RngExt` extension trait.
pub trait RngExt: RngCore {
    /// Draw from the standard distribution of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Uniform draw from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::standard(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{RngCore, RngExt};

    /// Shuffling and choosing on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(0.25f64..4.0);
            assert!((0.25..4.0).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
