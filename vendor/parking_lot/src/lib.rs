//! Offline stand-in for the `parking_lot` crate.
//!
//! This container has no network access and no crates.io mirror, so the
//! workspace vendors the small slice of `parking_lot`'s API it actually
//! uses — `Mutex`, `RwLock`, and `Condvar` without lock poisoning — on
//! top of `std::sync`. Poisoned std locks are recovered transparently
//! (`parking_lot` has no poisoning), which matches how every caller in
//! this workspace treats its locks.

use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion primitive, API-compatible with `parking_lot::Mutex`.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard of a locked [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Wrap `t` in a new mutex.
    pub const fn new(t: T) -> Self {
        Mutex(std::sync::Mutex::new(t))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during condvar wait")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during condvar wait")
    }
}

/// Result of a bounded [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Did the wait end because the timeout elapsed?
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable, API-compatible with `parking_lot::Condvar`
/// (waits take `&mut MutexGuard`).
#[derive(Default, Debug)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already taken");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard already taken");
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock, API-compatible with `parking_lot::RwLock`.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII read guard of an [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// RAII write guard of an [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Wrap `t` in a new rwlock.
    pub const fn new(t: T) -> Self {
        RwLock(std::sync::RwLock::new(t))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 2);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }
}
