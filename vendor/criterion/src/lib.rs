//! Offline stand-in for the `criterion` crate.
//!
//! Two modes:
//!
//! * **Smoke (default):** each benchmark closure runs exactly once, so
//!   `cargo test`/`cargo bench` validate that bench code still compiles and
//!   executes without burning minutes on measurement.
//! * **Measured (`FPDM_BENCH_FULL=1`):** each benchmark is warmed up and
//!   timed over `sample_size` samples; median/mean ns-per-iteration are
//!   printed to stdout. No statistics framework, no HTML reports — enough
//!   to record relative numbers in EXPERIMENTS.md.

use std::time::{Duration, Instant};

fn measured_mode() -> bool {
    std::env::var("FPDM_BENCH_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// How per-iteration setup cost is amortised in `iter_batched`. The stub
/// runs every batch size the same way (setup re-run per iteration, setup
/// time excluded from measurement).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to benchmark closures; `iter`/`iter_batched` run the routine.
pub struct Bencher {
    samples: usize,
    /// Per-sample routine nanoseconds collected in measured mode.
    times: Vec<u64>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            times: Vec::new(),
        }
    }

    /// Run `routine`; once in smoke mode, `samples` timed runs in
    /// measured mode.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !measured_mode() {
            std::hint::black_box(routine());
            return;
        }
        // Warmup.
        for _ in 0..3 {
            std::hint::black_box(routine());
        }
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.times.push(t0.elapsed().as_nanos() as u64);
        }
    }

    /// Run `routine` on fresh input from `setup`, excluding setup time
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if !measured_mode() {
            std::hint::black_box(routine(setup()));
            return;
        }
        for _ in 0..3 {
            std::hint::black_box(routine(setup()));
        }
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.times.push(t0.elapsed().as_nanos() as u64);
        }
    }

    fn report(&self, name: &str) {
        if self.times.is_empty() {
            return;
        }
        let mut sorted = self.times.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<u64>() / sorted.len() as u64;
        println!(
            "bench {name:<50} median {} mean {} ({} samples)",
            fmt_ns(median),
            fmt_ns(mean),
            sorted.len()
        );
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples measured mode collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.samples);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.as_ref()));
        self
    }

    /// End the group (no-op; exists for API parity).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(20);
        f(&mut b);
        b.report(id.as_ref());
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 20,
            _parent: self,
        }
    }

    #[doc(hidden)]
    pub fn final_summary(&self) {
        if measured_mode() {
            println!("bench run complete (measured mode)");
        }
    }
}

/// Prevent the optimiser from deleting a value (re-export parity).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[doc(hidden)]
pub fn __noop_duration() -> Duration {
    Duration::ZERO
}

/// Bundle benchmark functions into a runner, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
            c.final_summary();
        }
    };
}

/// Emit `main` running the listed groups, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut count = 0;
        let mut c = Criterion::default();
        c.bench_function("counted", |b| b.iter(|| count += 1));
        assert_eq!(count, 1, "smoke mode must run the routine exactly once");
    }

    #[test]
    fn groups_and_batched() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        let mut ran = false;
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8, 2, 3],
                |v| {
                    assert_eq!(v.len(), 3);
                },
                BatchSize::SmallInput,
            )
        });
        g.bench_function("plain", |b| b.iter(|| ran = true));
        g.finish();
        assert!(ran);
    }
}
