//! Deterministic RNG and case-level error type for the stub runner.

use std::fmt;

/// xoshiro256++ seeded from the test's name: every run of a given test
/// replays the same case stream, so failures reproduce without persisted
/// seed files.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seed from an arbitrary string (the property's function name).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is discarded, not a failure.
    Reject(String),
    /// `prop_assert*!` failed — the property is falsified.
    Fail(String),
}

impl TestCaseError {
    /// A discard.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// A real failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Is this a discard rather than a failure?
    pub fn is_rejection(&self) -> bool {
        matches!(self, TestCaseError::Reject(_))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}
