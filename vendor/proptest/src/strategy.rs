//! Strategies: composable random-value generators.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: `generate`
/// draws one value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Choose uniformly among `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

// ---------------------------------------------------------------------
// Numeric range strategies.
// ---------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------
// `any::<T>()`.
// ---------------------------------------------------------------------

/// Full-domain strategy for primitive `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

/// The whole domain of a primitive type. For floats this is "any bit
/// pattern" — including NaNs and infinities — which is what the codec
/// round-trip properties want to stress.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // 1-in-8 draws come from the special-value set so NaN/inf/±0/
        // subnormals show up at usable rates; the rest are raw bit patterns.
        if rng.below(8) == 0 {
            const SPECIALS: [f64; 8] = [
                f64::NAN,
                f64::INFINITY,
                f64::NEG_INFINITY,
                0.0,
                -0.0,
                f64::MIN_POSITIVE,
                f64::MAX,
                5e-324, // smallest subnormal
            ];
            SPECIALS[rng.below(SPECIALS.len() as u64) as usize]
        } else {
            f64::from_bits(rng.next_u64())
        }
    }
}

impl Strategy for Any<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        if rng.below(8) == 0 {
            const SPECIALS: [f32; 6] = [
                f32::NAN,
                f32::INFINITY,
                f32::NEG_INFINITY,
                0.0,
                -0.0,
                f32::MAX,
            ];
            SPECIALS[rng.below(SPECIALS.len() as u64) as usize]
        } else {
            f32::from_bits(rng.next_u64() as u32)
        }
    }
}

// ---------------------------------------------------------------------
// Tuple strategies.
// ---------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

// ---------------------------------------------------------------------
// Vec strategy.
// ---------------------------------------------------------------------

/// Inclusive-exclusive length bounds for [`VecStrategy`].
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Strategy for `Vec<S::Value>` (see [`crate::collection::vec`]).
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> VecStrategy<S> {
    pub(crate) fn new(element: S, size: SizeRange) -> Self {
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

// ---------------------------------------------------------------------
// Charclass-regex string strategies.
// ---------------------------------------------------------------------

/// `&str` patterns act as string strategies. Supported subset:
/// `[class]{m,n}`, `[class]{n}`, `[class]*` (0..=8), `[class]+` (1..=8),
/// where `class` is literal chars and `a-z` ranges. Anything else panics,
/// loudly, at generation time.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_charclass_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string-strategy pattern {self:?}"));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn parse_charclass_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let quant = &rest[close + 1..];

    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            if a > b {
                return None;
            }
            alphabet.extend((a..=b).filter(|c| c.is_ascii()));
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }

    let (lo, hi) = match quant {
        "*" => (0, 8),
        "+" => (1, 8),
        "" => (1, 1),
        q => {
            let body = q.strip_prefix('{')?.strip_suffix('}')?;
            match body.split_once(',') {
                Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
                None => {
                    let n: usize = body.trim().parse().ok()?;
                    (n, n)
                }
            }
        }
    };
    if lo > hi {
        return None;
    }
    Some((alphabet, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_and_maps() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (3usize..7).generate(&mut r);
            assert!((3..7).contains(&v));
            let m = (0u8..3).prop_map(|x| x * 2).generate(&mut r);
            assert!(m <= 4 && m % 2 == 0);
        }
    }

    #[test]
    fn string_patterns() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-cZ]{2,5}".generate(&mut r);
            assert!((2..=5).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c) || c == 'Z'));
            let t = "[AB]{0,3}".generate(&mut r);
            assert!(t.len() <= 3);
        }
    }

    #[test]
    fn vec_union_tuple() {
        let mut r = rng();
        let strat = crate::collection::vec((0u32..5, 0u32..5), 1..4);
        for _ in 0..100 {
            let v = strat.generate(&mut r);
            assert!((1..4).contains(&v.len()));
        }
        let u = Union::new(vec![(0i64..1).boxed(), (10i64..11).boxed()]);
        let vals: Vec<i64> = (0..50).map(|_| u.generate(&mut r)).collect();
        assert!(vals.contains(&0) && vals.contains(&10));
    }

    #[test]
    fn any_floats_cover_bit_patterns() {
        let mut r = rng();
        let mut saw_nonfinite = false;
        for _ in 0..500 {
            if !any::<f64>().generate(&mut r).is_finite() {
                saw_nonfinite = true;
            }
        }
        assert!(
            saw_nonfinite,
            "any::<f64>() should hit NaN/inf bit patterns"
        );
    }
}
