//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API this workspace uses —
//! `proptest!`, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! `prop_oneof!`, `any::<T>()`, numeric-range and charclass-regex string
//! strategies, tuple strategies, `prop::collection::vec`, `prop_map`,
//! `boxed`, and `ProptestConfig::with_cases` — as a deterministic
//! random-case runner. Differences from upstream: no shrinking (a failing
//! case reports its inputs un-minimised) and no persisted failure seeds
//! (every run replays the same per-test deterministic stream, so failures
//! reproduce by rerunning the test).

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy::new(element, size.into())
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

pub mod prelude {
    //! Everything a property test needs, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Module-path alias so `prop::collection::vec` works as upstream.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Assert inside a property; failure fails the case (with message) rather
/// than panicking directly, mirroring upstream semantics.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Discard the current case (does not count towards `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The property-test harness macro; see the crate docs for the supported
/// subset. Each `fn name(arg in strategy, ...) { body }` becomes a
/// `#[test]` running `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!({ $config } $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!({ $crate::ProptestConfig::default() } $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ({ $config:expr } ) => {};
    (
        { $config:expr }
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err(e) if e.is_rejection() => {
                        rejected += 1;
                        assert!(
                            rejected < 16 * config.cases + 1024,
                            "proptest `{}`: too many prop_assume rejections ({rejected})",
                            stringify!($name),
                        );
                    }
                    ::core::result::Result::Err(e) => panic!(
                        "proptest `{}` failed at case {}: {}",
                        stringify!($name),
                        accepted,
                        e
                    ),
                }
            }
        }
        $crate::__proptest_fns!({ $config } $($rest)*);
    };
}
